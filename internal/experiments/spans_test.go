package experiments

import (
	"testing"
	"time"

	"mittos/internal/cluster"
	"mittos/internal/metrics"
)

// Span property tests: run real experiment legs with full span tracing and
// check the per-IO invariants the observability layer promises —
//
//  1. every submitted IO terminates at most once, and a terminated span is
//     exactly one of completed/error XOR busy/busy-late XOR revoked, with
//     the per-node counters agreeing span-for-span;
//  2. stage timestamps are monotone: an IO never exits a queue before it
//     entered it, never starts service before reaching the device, and
//     never ends before it was submitted;
//  3. MittCFQ/MittSSD/MittCache never fast-reject an IO whose predicted
//     wait was within its deadline (§3.3: EBUSY means the SLO is
//     predictably violated, never a spurious refusal).

// snapCounter sums a snapshot counter across rows.
func snapCounter(sn *metrics.Snapshot, resource, counter string) uint64 {
	var v uint64
	for _, c := range sn.Counters {
		if c.Resource == resource && c.Counter == counter {
			v += c.Value
		}
	}
	return v
}

// checkSpanInvariants audits one leg's snapshot.
func checkSpanInvariants(t *testing.T, sn *metrics.Snapshot) {
	t.Helper()
	for _, v := range sn.Violations {
		t.Errorf("%s: online violation: %s", sn.Leg, v)
	}
	if sn.SpansDropped != 0 {
		t.Fatalf("%s: %d spans dropped despite unlimited tracing", sn.Leg, sn.SpansDropped)
	}
	if got, want := uint64(len(sn.Spans)), snapCounter(sn, "node", "submitted"); got != want {
		t.Errorf("%s: %d spans for %d submitted IOs", sn.Leg, got, want)
	}

	var completed, rejected, revoked, inflight uint64
	for _, sp := range sn.Spans {
		switch sp.Terminals {
		case 0:
			inflight++
			if sp.Verdict != "" || sp.EndNs != -1 {
				t.Errorf("%s: io#%d node=%d unterminated but verdict=%q end=%d",
					sn.Leg, sp.ID, sp.Node, sp.Verdict, sp.EndNs)
			}
			continue
		case 1:
		default:
			t.Errorf("%s: io#%d node=%d terminated %d times", sn.Leg, sp.ID, sp.Node, sp.Terminals)
			continue
		}

		switch sp.Verdict {
		case "completed", "error":
			completed++
		case "busy", "busy-late":
			rejected++
		case "revoked":
			revoked++
		default:
			t.Errorf("%s: io#%d node=%d unknown verdict %q", sn.Leg, sp.ID, sp.Node, sp.Verdict)
		}

		// Stage monotonicity over the stages the IO reached (-1 = skipped).
		stages := []struct {
			name string
			ns   int64
		}{
			{"submit", sp.SubmitNs},
			{"sched-enter", sp.SchedEnterNs},
			{"sched-exit", sp.SchedExitNs},
			{"dev-enter", sp.DevEnterNs},
			{"dev-start", sp.DevStartNs},
			{"end", sp.EndNs},
		}
		prev := stages[0]
		for _, st := range stages[1:] {
			if st.ns < 0 {
				continue
			}
			if st.ns < prev.ns {
				t.Errorf("%s: io#%d node=%d %s@%d precedes %s@%d",
					sn.Leg, sp.ID, sp.Node, st.name, st.ns, prev.name, prev.ns)
			}
			prev = st
		}

		// Fast rejections must be justified by the prediction: an IO whose
		// predicted wait fit the deadline is never refused. (busy-late is
		// exempt — there the wait grew after a correct admission.)
		if sp.Verdict == "busy" && sp.DeadlineNs > 0 && sp.PredWaitNs >= 0 &&
			sp.PredWaitNs <= sp.DeadlineNs {
			t.Errorf("%s: io#%d node=%d rejected with predicted wait %v <= deadline %v",
				sn.Leg, sp.ID, sp.Node,
				time.Duration(sp.PredWaitNs), time.Duration(sp.DeadlineNs))
		}
	}

	if want := snapCounter(sn, "node", "completed"); completed != want {
		t.Errorf("%s: %d completed spans vs node completed=%d", sn.Leg, completed, want)
	}
	if want := snapCounter(sn, "node", "rejected"); rejected != want {
		t.Errorf("%s: %d busy spans vs node rejected=%d", sn.Leg, rejected, want)
	}
	if total := completed + rejected + revoked + inflight; total != uint64(len(sn.Spans)) {
		t.Errorf("%s: span verdicts %d don't cover %d spans", sn.Leg, total, len(sn.Spans))
	}
}

// TestPutSpanInvariants runs mixed read/write MittOS legs with full span
// tracing and audits the write path: WAL group-commit IOs obey the same
// exactly-once / stage-monotonicity / justified-rejection span rules as
// reads, and the quorum accounting closes — after the drain every copy sent
// has exactly one classified reply and every user put exactly one terminal.
func TestPutSpanInvariants(t *testing.T) {
	for _, wl := range ycsbMixWorkloads {
		wl := wl
		t.Run(wl.name, func(t *testing.T) {
			opt := QuickOptions()
			opt.Duration = 4 * time.Second
			opt.Metrics = true
			opt.TraceIOs = -1
			f := newFleet(opt, fleetDisk, true, "putspans-"+wl.name)
			f.addEC2DiskNoise(opt)
			strat := &cluster.MittOSStrategy{C: f.c, Deadline: 20 * time.Millisecond, UseWaitHint: true}
			ps := &cluster.MittOSPut{C: f.c, Deadline: 5 * time.Millisecond, UseWaitHint: true}
			clients := f.startMixedClients(opt, strat, ps, wl.config(opt.Keys), wl.rmw)
			f.eng.RunFor(opt.Duration)
			for _, cl := range clients {
				cl.Stop()
			}
			f.stopNoise()
			f.eng.RunFor(5 * time.Second)

			checkSpanInvariants(t, f.snapshot("putspans/"+wl.name))

			pc := ps.PutCounters
			if pc.Puts == 0 || pc.CopiesSent == 0 {
				t.Fatalf("leg issued no puts (puts=%d copies=%d)", pc.Puts, pc.CopiesSent)
			}
			if got := pc.Acks + pc.Busy + pc.NodeDown + pc.Errors; got != pc.CopiesSent {
				t.Errorf("quorum accounting leaks: acks %d + busy %d + down %d + errs %d = %d, want copies sent %d",
					pc.Acks, pc.Busy, pc.NodeDown, pc.Errors, got, pc.CopiesSent)
			}
			if got := pc.Quorums + pc.Failed; got != pc.Puts {
				t.Errorf("put terminals not exactly-once: quorums %d + failed %d = %d, want puts %d",
					pc.Quorums, pc.Failed, got, pc.Puts)
			}
			if pc.NodeDown != 0 {
				t.Errorf("no node crashed, yet %d copies saw ErrNodeDown", pc.NodeDown)
			}
		})
	}
}

func TestSpanInvariantsFig4(t *testing.T) {
	opt := QuickFig4Options()
	opt.Duration = 4 * time.Second
	opt.Metrics = true
	opt.TraceIOs = -1
	res := Fig4(opt)
	if len(res.Metrics) != 12 {
		t.Fatalf("fig4 attached %d snapshots, want 12 legs", len(res.Metrics))
	}
	for _, sn := range res.Metrics {
		checkSpanInvariants(t, sn)
	}
}

func TestSpanInvariantsFig7(t *testing.T) {
	opt := tinyOptions()
	opt.Duration = 3 * time.Second
	opt.Metrics = true
	opt.TraceIOs = -1
	res := Fig7(opt)
	if len(res.Metrics) != 9 {
		t.Fatalf("fig7 attached %d snapshots, want 1 base + 8 strategy legs", len(res.Metrics))
	}
	for _, sn := range res.Metrics {
		checkSpanInvariants(t, sn)
	}
}
