package experiments

import (
	"fmt"
	"runtime"
	"sync"
)

// The parallel experiment runner.
//
// Every experiment in this reproduction decomposes into *legs*: independent
// simulation runs that each build their own sim.Engine, RNG streams, and
// fleet, and communicate with the rest of the experiment only through
// variables the leg closure captures. Legs share no mutable state — the only
// package-level data they touch is sharedDiskProfile, which is computed once
// at init and read-only afterwards — so they can execute on any number of OS
// threads without changing a single output bit. Each engine itself stays
// single-threaded; parallelism exists only *between* engines.
//
// Determinism is preserved by construction: a leg's result depends only on
// its inputs (options, seed, salt), and callers assemble Series/Tables in
// declaration order after runLegs returns, so the rendered Result is
// byte-identical whether legs ran serially or on eight workers.
// TestFig4ParallelDeterminism and TestConvertedExperimentsParallelDeterminism
// prove this rather than assert it.
//
// Stages with data dependencies (e.g. every strategy run needing the
// baseline's p95) are expressed as consecutive runLegs calls: runLegs is a
// barrier, so a later stage may read anything an earlier stage wrote.

// legs is an ordered slice of self-contained experiment legs.
type legs []func()

// add appends a leg; sugar that keeps call sites tidy.
func (l *legs) add(fn func()) { *l = append(*l, fn) }

// resolveWorkers maps the Options.Workers convention (0 = one worker per
// CPU) to a concrete pool size.
func resolveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// runLegs executes every leg on a bounded worker pool and returns once all
// have finished. Legs are handed to workers in declaration order; with
// workers ≤ 1 they run inline, which is the reference serial schedule the
// determinism tests compare against. A panicking leg does not kill the
// pool's goroutine silently: the first panic is captured and re-raised on
// the calling goroutine after the pool drains.
func runLegs(workers int, ls legs) {
	workers = resolveWorkers(workers)
	if workers > len(ls) {
		workers = len(ls)
	}
	if workers <= 1 {
		for _, fn := range ls {
			fn()
		}
		return
	}
	var (
		wg         sync.WaitGroup
		panicOnce  sync.Once
		panicValue any
	)
	work := make(chan func())
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for fn := range work {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() { panicValue = r })
						}
					}()
					fn()
				}()
			}
		}()
	}
	for _, fn := range ls {
		work <- fn
	}
	close(work)
	wg.Wait()
	if panicValue != nil {
		panic(fmt.Sprintf("experiments: leg panicked: %v", panicValue))
	}
}
