package experiments

import (
	"fmt"
	"runtime"
	"sync"
)

// The parallel experiment runner.
//
// Every experiment in this reproduction decomposes into *legs*: independent
// simulation runs that each build their own RNG streams and fleet, and
// communicate with the rest of the experiment only through variables the leg
// closure captures. Legs share no mutable state — the only package-level
// data they touch is sharedDiskProfile, which is computed once at init and
// read-only afterwards — so they can execute on any number of OS threads
// without changing a single output bit. Each engine itself stays
// single-threaded; parallelism exists only *between* engines.
//
// Each leg receives a worker-local legArena and is expected to build its
// fleets through it (a.newFleet); the runner resets the arena after every
// leg, so engines, context freelists, SSD devices, cache pages, and sample
// buffers are recycled instead of reallocated — the difference between an
// experiment-scale GC storm and a steady heap. Arena state never leaks into
// results: reset runs after the leg has copied its outputs, and pooled
// objects are fully reinitialized at acquire.
//
// Determinism is preserved by construction: a leg's result depends only on
// its inputs (options, seed, salt), and callers assemble Series/Tables in
// declaration order after runLegs returns, so the rendered Result is
// byte-identical whether legs ran serially or on eight workers.
// TestFig4ParallelDeterminism and TestConvertedExperimentsParallelDeterminism
// prove this rather than assert it; TestLegArenaReuse pins that arena reuse
// itself is invisible.
//
// Stages with data dependencies (e.g. every strategy run needing the
// baseline's p95) are expressed as consecutive runLegs calls: runLegs is a
// barrier, so a later stage may read anything an earlier stage wrote.

// legs is an ordered slice of self-contained experiment legs.
type legs []func(*legArena)

// add appends a leg; sugar that keeps call sites tidy.
func (l *legs) add(fn func(*legArena)) { *l = append(*l, fn) }

// resolveWorkers maps the Options.Workers convention (0 = one worker per
// CPU) to a concrete pool size.
func resolveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// runLegs executes every leg on a bounded worker pool and returns once all
// have finished. Legs are handed to workers in declaration order; with
// workers ≤ 1 they run inline, which is the reference serial schedule the
// determinism tests compare against. Each worker owns one arena for its
// lifetime and resets it between legs. A panicking leg does not kill the
// pool's goroutine silently: the first panic is captured and re-raised on
// the calling goroutine after the pool drains. An arena whose leg panicked
// is discarded rather than returned to the pool — its engine may be
// mid-run, so it cannot be safely reset.
func runLegs(workers int, ls legs) {
	workers = resolveWorkers(workers)
	if workers > len(ls) {
		workers = len(ls)
	}
	if workers <= 1 {
		a := acquireArena()
		for _, fn := range ls {
			fn(a) // a panic propagates; the dirty arena is dropped
			a.reset()
		}
		releaseArena(a)
		return
	}
	var (
		wg         sync.WaitGroup
		panicOnce  sync.Once
		panicValue any
	)
	work := make(chan func(*legArena))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := acquireArena()
			for fn := range work {
				panicked := true
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() { panicValue = r })
						}
					}()
					fn(a)
					panicked = false
				}()
				if panicked {
					// The arena's engine may still hold the panicked leg's
					// state; start the worker over on a fresh one.
					a = acquireArena()
					continue
				}
				a.reset()
			}
			releaseArena(a)
		}()
	}
	for _, fn := range ls {
		work <- fn
	}
	close(work)
	wg.Wait()
	if panicValue != nil {
		panic(fmt.Sprintf("experiments: leg panicked: %v", panicValue))
	}
}
