package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Golden-output regression tests: the quick-mode render of every experiment
// is checked byte-for-byte against testdata/golden/<id>.txt. The files are
// the repo's determinism contract — any change to simulation-visible code
// paths (RNG draws, event ordering, float formatting) shows up here as a
// diff, reviewable in the commit that caused it.
//
// Regenerate with:
//
//	go test ./internal/experiments -run Golden -update
//
// The -golden-workers flag pins the leg worker pool; CI runs the suite at
// 1 and 8 workers and both must match the same files.
var (
	updateGolden  = flag.Bool("update", false, "rewrite testdata/golden from this run's output")
	goldenWorkers = flag.Int("golden-workers", 0, "leg worker pool for golden runs (0 = one per CPU)")
)

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".txt")
}

func checkGolden(t *testing.T, id, got string) {
	t.Helper()
	path := goldenPath(id)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if got == string(want) {
		return
	}
	t.Errorf("%s output drifted from %s (regenerate with -update if intended):\n%s",
		id, path, firstDiff(string(want), got))
}

// firstDiff renders the first differing line with context.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n- %s\n+ %s", i+1, w, g)
		}
	}
	return "(outputs differ only in length)"
}

// TestGolden locks the quick-mode render of every registered experiment.
func TestGolden(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, RunConfig{Quick: true, Seed: 1, Workers: *goldenWorkers})
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, id, res.String())
		})
	}
}

// TestGoldenMetricsInvariant re-runs fig4 with the observability layer on
// (full span tracing included) and requires the rendered output to match
// the same golden file: metrics must never perturb the simulation.
func TestGoldenMetricsInvariant(t *testing.T) {
	res, err := Run("fig4", RunConfig{Quick: true, Seed: 1, Workers: *goldenWorkers,
		Metrics: true, TraceIOs: -1})
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		t.Skip("golden written by TestGolden")
	}
	checkGolden(t, "fig4", res.String())
	if len(res.Metrics) == 0 {
		t.Fatal("fig4 with Metrics on attached no snapshots")
	}
}

// TestGoldenYCSBMixMetricsInvariant is the write-path twin: ycsbmix with full
// span tracing must render byte-identically to its golden — the put-stage
// histograms and span capture never perturb the simulation.
func TestGoldenYCSBMixMetricsInvariant(t *testing.T) {
	res, err := Run("ycsbmix", RunConfig{Quick: true, Seed: 1, Workers: *goldenWorkers,
		Metrics: true, TraceIOs: -1})
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		t.Skip("golden written by TestGolden")
	}
	checkGolden(t, "ycsbmix", res.String())
	if len(res.Metrics) == 0 {
		t.Fatal("ycsbmix with Metrics on attached no snapshots")
	}
}
