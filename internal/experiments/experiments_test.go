package experiments

import (
	"testing"
	"time"
)

// tinyOptions keep the macro experiments test-sized.
func tinyOptions() Options {
	o := QuickOptions()
	o.Nodes = 6
	o.Clients = 4
	o.Duration = 5 * time.Second
	o.Keys = 10000
	return o
}

func TestFig5ShapeHolds(t *testing.T) {
	res := Fig5(tinyOptions())
	mitt := res.FindSeries("MittCFQ")
	base := res.FindSeries("Base")
	hedged := res.FindSeries("Hedged")
	appTO := res.FindSeries("AppTO")
	if mitt == nil || base == nil || hedged == nil || appTO == nil {
		t.Fatal("missing series")
	}
	// The paper's ordering at the tail: MittCFQ < Hedged < AppTO-ish < Base.
	if mitt.Sample.Percentile(95) >= base.Sample.Percentile(95) {
		t.Fatalf("MittCFQ p95 %v not better than Base %v",
			mitt.Sample.Percentile(95), base.Sample.Percentile(95))
	}
	if mitt.Sample.Percentile(95) >= hedged.Sample.Percentile(95) {
		t.Fatalf("MittCFQ p95 %v not better than Hedged %v",
			mitt.Sample.Percentile(95), hedged.Sample.Percentile(95))
	}
	if mitt.Sample.Percentile(99) >= appTO.Sample.Percentile(99) {
		t.Fatalf("MittCFQ p99 %v not better than AppTO %v",
			mitt.Sample.Percentile(99), appTO.Sample.Percentile(99))
	}
	if res.String() == "" {
		t.Fatal("empty render")
	}
}

func TestFig5Deterministic(t *testing.T) {
	a := Fig5(tinyOptions())
	b := Fig5(tinyOptions())
	if a.String() != b.String() {
		t.Fatal("Fig5 not reproducible with the same seed")
	}
}

func TestFig6ScaleAmplification(t *testing.T) {
	res := Fig6(tinyOptions())
	// User-request latency must grow with the scale factor for both
	// strategies, and MittCFQ must win at p95 for the larger factors.
	h1 := res.FindSeries("Hedged-SF1").Sample
	h10 := res.FindSeries("Hedged-SF10").Sample
	if h10.Percentile(75) <= h1.Percentile(75) {
		t.Fatalf("no amplification: SF1 p75 %v vs SF10 p75 %v",
			h1.Percentile(75), h10.Percentile(75))
	}
	for _, sf := range []string{"5", "10"} {
		m := res.FindSeries("MittCFQ-SF" + sf).Sample
		h := res.FindSeries("Hedged-SF" + sf).Sample
		if m.Percentile(95) >= h.Percentile(95) {
			t.Fatalf("SF%s: MittCFQ p95 %v not better than Hedged %v",
				sf, m.Percentile(95), h.Percentile(95))
		}
	}
}

func TestFig3Distributions(t *testing.T) {
	opt := QuickFig3Options()
	res := Fig3(opt)
	// Panel g: with §6 calibration, zero-busy dominates and P(k) decays.
	if res.BusyPMF[0] < 0.4 {
		t.Fatalf("P(0 busy) = %.2f; noise far too strong", res.BusyPMF[0])
	}
	if res.BusyPMF[1] <= res.BusyPMF[2] {
		t.Fatalf("P(1)=%.3f should exceed P(2)=%.3f", res.BusyPMF[1], res.BusyPMF[2])
	}
	if res.BusyPMF[1] == 0 {
		t.Fatal("no busy periods observed; noise inert")
	}
	// Panels a–c: disk noise-free band ~6-10ms, tails above it.
	disk := res.FindSeries("disk").Sample
	if med := disk.Percentile(50); med < 4*time.Millisecond || med > 12*time.Millisecond {
		t.Fatalf("disk median %v outside 4–12ms", med)
	}
	if disk.Max() < 20*time.Millisecond {
		t.Fatal("disk fleet shows no tail at all")
	}
	cache := res.FindSeries("cache").Sample
	if med := cache.Percentile(50); med > 100*time.Microsecond {
		t.Fatalf("cache median %v; should be a hit", med)
	}
	// Panels d–f: inter-arrivals recorded.
	if res.InterArrival["disk"].N() == 0 {
		t.Fatal("no noisy-period inter-arrivals recorded")
	}
}

func TestFig4MittTracksNoNoise(t *testing.T) {
	opt := QuickFig4Options()
	opt.Duration = 5 * time.Second
	res := Fig4(opt)
	for _, panel := range []string{"CFQ-LowPrioNoise", "CFQ-HighPrioNoise", "SSD-WriteNoise", "Cache-Evict20"} {
		base := res.FindSeries(panel + "/Base").Sample
		mitt := res.FindSeries(panel + "/MittOS").Sample
		if mitt.Percentile(95) >= base.Percentile(95) {
			t.Fatalf("%s: MittOS p95 %v not better than Base %v",
				panel, mitt.Percentile(95), base.Percentile(95))
		}
	}
	// Panel (b): high-priority noise hurts Base from the median down.
	baseHigh := res.FindSeries("CFQ-HighPrioNoise/Base").Sample
	noNoise := res.FindSeries("CFQ-HighPrioNoise/NoNoise").Sample
	if baseHigh.Percentile(50) < 2*noNoise.Percentile(50) {
		t.Fatalf("high-prio noise should hurt Base at p50: %v vs %v",
			baseHigh.Percentile(50), noNoise.Percentile(50))
	}
}

func TestFig7MittCacheBeatsHedged(t *testing.T) {
	res := Fig7(tinyOptions())
	// With the §6-calibrated ~2% miss rate, SF=1 differences live in the
	// p99 tail; fan-out amplifies the miss probability so SF=5 shows at
	// p95 (§7.3's 1−(1−P)^N).
	m1 := res.FindSeries("MittCache-SF1").Sample
	h1 := res.FindSeries("Hedged-SF1").Sample
	if m1.Mean() >= h1.Mean() {
		t.Fatalf("SF1: MittCache mean %v not better than Hedged %v",
			m1.Mean(), h1.Mean())
	}
	m5 := res.FindSeries("MittCache-SF5").Sample
	h5 := res.FindSeries("Hedged-SF5").Sample
	if m5.Percentile(95) >= h5.Percentile(95) {
		t.Fatalf("SF5: MittCache p95 %v not better than Hedged %v",
			m5.Percentile(95), h5.Percentile(95))
	}
}

func TestFig8HedgedBackfires(t *testing.T) {
	opt := QuickFig8Options()
	opt.Duration = 5 * time.Second
	res := Fig8(opt)
	base := res.FindSeries("Base").Sample
	hedged := res.FindSeries("Hedged").Sample
	mitt := res.FindSeries("MittSSD").Sample
	// §7.5's surprise: hedged is WORSE than base in the body (CPU
	// contention from thread doubling).
	if hedged.Percentile(90) <= base.Percentile(90) {
		t.Fatalf("hedged p90 %v not worse than base %v; CPU pathology missing",
			hedged.Percentile(90), base.Percentile(90))
	}
	if mitt.Percentile(95) >= hedged.Percentile(95) {
		t.Fatalf("MittSSD p95 %v not better than Hedged %v",
			mitt.Percentile(95), hedged.Percentile(95))
	}
}

func TestFig9AccuracyBands(t *testing.T) {
	opt := QuickFig9Options()
	opt.TraceLen = 2 * time.Minute
	opt.Window = 30 * time.Second
	_, rows := Fig9(opt)
	if len(rows) != 20 {
		t.Fatalf("rows = %d, want 5 traces × 4 layers", len(rows))
	}
	var cfqWorst, ssdWorst, naiveBest float64
	naiveBest = 1
	for _, r := range rows {
		switch r.Layer {
		case "MittDL":
			if r.Acc.InaccuracyRate() > 0.20 {
				t.Fatalf("%s MittDL inaccuracy %.1f%%", r.Trace, 100*r.Acc.InaccuracyRate())
			}
		case "MittCFQ":
			if r.Acc.InaccuracyRate() > cfqWorst {
				cfqWorst = r.Acc.InaccuracyRate()
			}
			if r.Acc.MeanAbsDiff() > 5*time.Millisecond {
				t.Fatalf("%s MittCFQ mean |diff| %v too large", r.Trace, r.Acc.MeanAbsDiff())
			}
		case "MittSSD":
			if r.Acc.InaccuracyRate() > ssdWorst {
				ssdWorst = r.Acc.InaccuracyRate()
			}
		case "Naive":
			if r.Acc.InaccuracyRate() < naiveBest {
				naiveBest = r.Acc.InaccuracyRate()
			}
		}
		if r.Acc.Total() == 0 {
			t.Fatalf("%s/%s verdicted nothing", r.Trace, r.Layer)
		}
	}
	if cfqWorst > 0.15 {
		t.Fatalf("MittCFQ worst inaccuracy %.1f%% too high", 100*cfqWorst)
	}
	if ssdWorst > 0.15 {
		t.Fatalf("MittSSD worst inaccuracy %.1f%% too high", 100*ssdWorst)
	}
}

func TestFig10ErrorSensitivity(t *testing.T) {
	res := Fig10(tinyOptions())
	noErr := res.FindSeries("NoError").Sample
	fn100 := res.FindSeries("FalseNeg-100%").Sample
	fp100 := res.FindSeries("FalsePos-100%").Sample
	base := res.FindSeries("Base").Sample
	// §7.7: 100% FN ≈ Base (MittOS absent); 100% FP floods with failovers
	// and is far worse than NoError.
	if fn100.Percentile(99) < noErr.Percentile(99) {
		t.Fatalf("100%% FN p99 %v should not beat NoError %v",
			fn100.Percentile(99), noErr.Percentile(99))
	}
	ratio := float64(fn100.Percentile(99)) / float64(base.Percentile(99))
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("100%% FN p99 should approximate Base: ratio %.2f", ratio)
	}
	if fp100.Mean() <= noErr.Mean() {
		t.Fatalf("100%% FP mean %v should exceed NoError %v",
			fp100.Mean(), noErr.Mean())
	}
}

func TestFig12C3FailsUnderFastRotation(t *testing.T) {
	res := Fig12(tinyOptions())
	noBusy := res.FindSeries("C3/NoBusy").Sample
	fast := res.FindSeries("C3/1B2F-1sec").Sample
	slow := res.FindSeries("C3/1B2F-5sec").Sample
	if fast.Percentile(99) <= noBusy.Percentile(99) {
		t.Fatal("1-second rotation did not hurt C3 at all")
	}
	// C3 adapts at 5s rotation: its p99 must be much closer to NoBusy.
	if slow.Percentile(99) >= fast.Percentile(99) {
		t.Fatalf("C3 5s-rotation p99 %v not better than 1s %v",
			slow.Percentile(99), fast.Percentile(99))
	}
}

func TestFig13EBUSYTimelineTracksQueueDepth(t *testing.T) {
	res := Fig13(tinyOptions())
	base := res.FindSeries("Base").Sample
	mitt := res.FindSeries("MittCFQ").Sample
	if mitt.Percentile(95) >= base.Percentile(95) {
		t.Fatalf("Riak+LevelDB: Mitt p95 %v not better than Base %v",
			mitt.Percentile(95), base.Percentile(95))
	}
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline samples")
	}
	// Rejections must only grow, and some must have happened.
	var last uint64
	for _, p := range res.Timeline {
		if p.Rejected < last {
			t.Fatal("rejected counter went backwards")
		}
		last = p.Rejected
	}
}

func TestWritesUnaffectedByNoise(t *testing.T) {
	res := Writes(tinyOptions())
	nn := res.FindSeries("NoNoise").Sample
	base := res.FindSeries("Base").Sample
	// §7.8.6: "the Base and NoNoise latency lines are very close".
	ratio := float64(base.Percentile(95)) / float64(nn.Percentile(95))
	if ratio > 1.5 {
		t.Fatalf("write p95 inflated %.2f× by noise; write buffering broken", ratio)
	}
}

func TestAllInOneCoexistence(t *testing.T) {
	opt := tinyOptions()
	res := AllInOne(opt)
	for _, user := range []string{"disk-user(20ms)", "ssd-user(1ms)", "cache-user(0.2ms)"} {
		base := res.FindSeries(user + "/Base").Sample
		mitt := res.FindSeries(user + "/Mitt").Sample
		if mitt.Percentile(95) >= base.Percentile(95) {
			t.Fatalf("%s: Mitt p95 %v not better than Base %v",
				user, mitt.Percentile(95), base.Percentile(95))
		}
	}
}

func TestTable1Render(t *testing.T) {
	res := Table1(tinyOptions())
	out := res.String()
	for _, want := range []string{"Cassandra", "MongoDB", "Voldemort"} {
		if !contains(out, want) {
			t.Fatalf("table1 output missing %s", want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestFig11MixReductionPositive(t *testing.T) {
	res := Fig11(tinyOptions())
	mitt := res.FindSeries("MittCFQ").Sample
	hedged := res.FindSeries("Hedged").Sample
	if mitt.Percentile(95) >= hedged.Percentile(95) {
		t.Fatalf("workload mix: Mitt p95 %v not better than Hedged %v",
			mitt.Percentile(95), hedged.Percentile(95))
	}
}
