package experiments

import (
	"fmt"
	"testing"
	"time"

	"mittos/internal/cluster"
)

// TestLegArenaReuse pins the arena contract: running a leg through an arena
// that already hosted other legs must be indistinguishable from running it
// on a fresh heap. The schedule alternates Base and MittOS mixed-workload
// legs — the shape a real worker sees — so any state leaking across reset
// (a stale pooled context, an engine that didn't rewind, a dirty sample
// buffer, a recycled SSD with leftover FTL state) shows up as a divergent
// fingerprint. The race detector (CI runs the suite under -race) guards the
// reclaim walk itself.
func TestLegArenaReuse(t *testing.T) {
	opt := tinyOptions()
	opt.Duration = 2 * time.Second

	leg := func(mitt bool) func(*legArena) string {
		name := "base"
		if mitt {
			name = "mitt"
		}
		return func(a *legArena) string {
			f := a.newFleet(opt, fleetDisk, mitt, "arenareuse-"+name)
			f.addEC2DiskNoise(opt)
			var strat cluster.Strategy
			var ps cluster.PutStrategy
			if mitt {
				strat = &cluster.MittOSStrategy{C: f.c, Deadline: 20 * time.Millisecond, UseWaitHint: true}
				ps = &cluster.MittOSPut{C: f.c, Deadline: 20 * time.Millisecond, UseWaitHint: true}
			} else {
				strat = &cluster.BaseStrategy{C: f.c}
				ps = &cluster.BasePut{C: f.c}
			}
			clients := f.startMixedClients(opt, strat, ps, ycsbMixWorkloads[0].config(opt.Keys), false)
			f.eng.RunFor(opt.Duration)
			for _, cl := range clients {
				cl.Stop()
			}
			f.stopNoise()
			f.eng.RunFor(5 * time.Second) // drain in-flight quorums
			io, _ := collectClients(clients)
			puts := collectPuts(clients)
			if io.N() == 0 || puts.N() == 0 {
				t.Fatalf("%s leg ran empty (%d gets, %d puts); the fingerprint would compare nothing", name, io.N(), puts.N())
			}
			finished, errors := 0, 0
			for _, cl := range clients {
				finished += cl.Finished()
				errors += cl.Errors()
			}
			return fmt.Sprintf(
				"%s n=%d p50=%v p95=%v p99=%v putn=%d putp95=%v putp99=%v finished=%d errors=%d",
				name, io.N(), io.Percentile(50), io.Percentile(95), io.Percentile(99),
				puts.N(), puts.Percentile(95), puts.Percentile(99), finished, errors)
		}
	}

	schedule := []func(*legArena) string{leg(false), leg(true), leg(false), leg(true)}

	// Fresh-heap references: a brand-new arena per leg, never reused.
	want := make([]string, len(schedule))
	for i, fn := range schedule {
		want[i] = fn(newLegArena())
	}

	// The runLegs discipline: one arena hosts every leg, reset in between.
	a := newLegArena()
	for i, fn := range schedule {
		if got := fn(a); got != want[i] {
			t.Fatalf("leg %d through a reused arena diverged from the fresh-heap run:\n reused: %s\n  fresh: %s",
				i, got, want[i])
		}
		a.reset()
	}
}
