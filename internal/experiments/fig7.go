package experiments

import (
	"fmt"
	"time"

	"mittos/internal/cluster"
	"mittos/internal/metrics"
	"mittos/internal/sim"
	"mittos/internal/stats"
)

// Fig7 reproduces Figure 7: MittCache vs hedged requests on a 20-node
// cluster whose working set lives in the OS cache, with P% of the cached
// data periodically swapped out by memory contention (§7.4). The deadline
// is tiny — "such that addrcheck returns EBUSY when the data is not cached".
func Fig7(opt Options) *Result {
	res := &Result{ID: "fig7", Title: "MittCache vs Hedged under memory contention (§7.4)"}
	const deadline = 200 * time.Microsecond

	// Stage 1: baseline with cache-eviction noise sets the hedge trigger.
	var baseIO *stats.Sample
	var baseSnap *metrics.Snapshot
	runLegs(opt.Workers, legs{func(a *legArena) {
		fb := a.newFleet(opt, fleetDiskCache, false, "fig7-base")
		warmFleet(fb, opt)
		addCacheNoise(fb, opt)
		baseIO, _ = fb.runClients(opt, &cluster.BaseStrategy{C: fb.c}, 1)
		baseSnap = fb.snapshot("fig7/Base")
	}})
	if baseSnap != nil {
		res.Metrics = append(res.Metrics, baseSnap)
	}
	hedgeAfter := baseIO.Percentile(95)
	res.Series = append(res.Series, Series{Name: "Base", Sample: baseIO})
	res.Notes = append(res.Notes, fmt.Sprintf("hedge trigger = Base p95 = %v; deadline = %v",
		hedgeAfter, deadline))

	tb := &stats.Table{Header: []string{"SF", "Avg", "p75", "p90", "p95", "p99"}}
	// Stage 2: one leg per (scale factor, strategy), as in Fig6.
	sfs := []int{1, 2, 5, 10}
	hedgedOut := make([]*stats.Sample, len(sfs))
	mittOut := make([]*stats.Sample, len(sfs))
	hedgedSnap := make([]*metrics.Snapshot, len(sfs))
	mittSnap := make([]*metrics.Snapshot, len(sfs))
	var ls legs
	for i, sf := range sfs {
		// Constant per-node IO load across scale factors (see Fig6).
		sopt := opt
		sopt.Interval = opt.Interval * time.Duration(sf)
		i, sf, sopt := i, sf, sopt
		ls.add(func(a *legArena) {
			fh := a.newFleet(sopt, fleetDiskCache, false, fmt.Sprintf("fig7-hedged-sf%d", sf))
			warmFleet(fh, sopt)
			addCacheNoise(fh, sopt)
			_, hedgedUser := fh.runClients(sopt, &cluster.HedgedStrategy{C: fh.c, HedgeAfter: hedgeAfter}, sf)
			hedgedOut[i] = hedgedUser
			hedgedSnap[i] = fh.snapshot(fmt.Sprintf("fig7/Hedged-SF%d", sf))
		})
		ls.add(func(a *legArena) {
			fm := a.newFleet(sopt, fleetDiskCache, true, fmt.Sprintf("fig7-mitt-sf%d", sf))
			warmFleet(fm, sopt)
			addCacheNoise(fm, sopt)
			_, mittUser := fm.runClients(sopt, &cluster.MittOSStrategy{C: fm.c, Deadline: deadline}, sf)
			mittOut[i] = mittUser
			mittSnap[i] = fm.snapshot(fmt.Sprintf("fig7/MittCache-SF%d", sf))
		})
	}
	runLegs(opt.Workers, ls)
	for i, sf := range sfs {
		res.Series = append(res.Series,
			Series{Name: fmt.Sprintf("Hedged-SF%d", sf), Sample: hedgedOut[i]},
			Series{Name: fmt.Sprintf("MittCache-SF%d", sf), Sample: mittOut[i]},
		)
		if hedgedSnap[i] != nil {
			res.Metrics = append(res.Metrics, hedgedSnap[i], mittSnap[i])
		}
		row := stats.ReductionRow(mittOut[i], hedgedOut[i])
		cells := []string{fmt.Sprintf("%d", sf)}
		for _, v := range row {
			cells = append(cells, stats.FormatPct(v))
		}
		tb.AddRow(cells...)
	}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes, "table: % latency reduction of MittCache vs Hedged per scale factor")
	return res
}

// warmFleet loads every node's working set into its page cache.
func warmFleet(f *fleet, opt Options) {
	for _, n := range f.c.Nodes {
		warmNodeCache(n, opt.Keys)
	}
}

// addCacheNoise periodically swaps out a contiguous slab of each node's
// cached blocks — the §7.4 manual-swapping methodology, with the slab size
// calibrated to Figure 3c's cache-miss rates (~1.5%).
func addCacheNoise(f *fleet, opt Options) {
	for i, n := range f.c.Nodes {
		n := n
		rng := sim.NewRNG(opt.Seed, fmt.Sprintf("fig7-noise-%d", i))
		// Slab size × re-warm delay targets a ~8% instantaneous swapped-out
		// fraction, so misses surface at ~p90-95 as in Figure 7a.
		slabKeys := opt.Keys / 50
		if slabKeys < 1 {
			slabKeys = 1
		}
		f.eng.NewTicker(500*time.Millisecond, func() {
			start := rng.Int63n(opt.Keys - slabKeys)
			for k := start; k < start+slabKeys; k++ {
				if off, ok := n.Store.KeyOffset(k); ok {
					n.Cache.EvictRange(off, 4096)
				}
			}
			// The owner re-touches its working set: the slab returns to
			// memory a couple of seconds later, as on EC2 (§6).
			f.eng.After(2*time.Second, func() {
				for k := start; k < start+slabKeys; k++ {
					if off, ok := n.Store.KeyOffset(k); ok {
						n.Cache.Warm(off, 4096)
					}
				}
			})
		})
	}
}
