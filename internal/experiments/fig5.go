package experiments

import (
	"fmt"
	"time"

	"mittos/internal/cluster"
	"mittos/internal/sim"
	"mittos/internal/stats"
)

// Fig5 reproduces Figure 5: MittCFQ vs hedged requests, cloning, and
// application timeout on a 20-node disk-based MongoDB-like cluster with
// EC2-derived noise (§7.2). Panel (a) is the per-IO latency CDF; panel (b)
// the %-latency-reduction bars of MittCFQ against each alternative.
func Fig5(opt Options) *Result {
	res := &Result{ID: "fig5", Title: "MittCFQ vs Hedged/Clone/AppTO with EC2 noise (§7.2)"}

	// The p95 of the noisy baseline sets every knob, as in the paper.
	p95, baseIO := baselineP95(opt, fleetDisk, true)
	res.Notes = append(res.Notes,
		fmt.Sprintf("deadline/timeout/hedge trigger = noisy-Base p95 = %v", p95))
	res.Series = append(res.Series, Series{Name: "Base", Sample: baseIO})

	samples := map[string]*stats.Sample{"Base": baseIO}
	runs := []struct {
		name string
		mitt bool
		mk   func(c *cluster.Cluster) cluster.Strategy
	}{
		{"AppTO", false, func(c *cluster.Cluster) cluster.Strategy {
			return &cluster.TimeoutStrategy{C: c, TO: p95}
		}},
		{"Clone", false, func(c *cluster.Cluster) cluster.Strategy {
			return &cluster.CloneStrategy{C: c, RNG: sim.NewRNG(opt.Seed, "clone")}
		}},
		{"Hedged", false, func(c *cluster.Cluster) cluster.Strategy {
			return &cluster.HedgedStrategy{C: c, HedgeAfter: p95}
		}},
		{"MittCFQ", true, func(c *cluster.Cluster) cluster.Strategy {
			return &cluster.MittOSStrategy{C: c, Deadline: p95}
		}},
	}
	// Stage 2: the four strategy fleets are independent given p95; one leg
	// each, Series appended in declaration order after the barrier.
	outs := make([]*stats.Sample, len(runs))
	var ls legs
	for i, r := range runs {
		i, r := i, r
		ls.add(func(a *legArena) {
			f := a.newFleet(opt, fleetDisk, r.mitt, r.name)
			f.addEC2DiskNoise(opt)
			io, _ := f.runClients(opt, r.mk(f.c), 1)
			outs[i] = io
		})
	}
	runLegs(opt.Workers, ls)
	for i, r := range runs {
		samples[r.name] = outs[i]
		res.Series = append(res.Series, Series{Name: r.name, Sample: outs[i]})
	}

	res.Tables = append(res.Tables, reductionTable(samples["MittCFQ"], samples))
	return res
}

// Fig6 reproduces Figure 6: tail amplified by scale. A user request fans
// out to SF parallel gets and waits for all; MittCFQ and Hedged are
// compared at SF ∈ {1, 2, 5, 10} (§7.3).
func Fig6(opt Options) *Result {
	res := &Result{ID: "fig6", Title: "Tail amplified by scale: MittCFQ vs Hedged (§7.3)"}
	p95, _ := baselineP95(opt, fleetDisk, true)
	res.Notes = append(res.Notes, fmt.Sprintf("deadline/hedge trigger = %v", p95))

	tb := &stats.Table{Header: []string{"SF", "Avg", "p75", "p90", "p95", "p99"}}
	// Stage 2: one leg per (scale factor, strategy) — eight hermetic runs.
	sfs := []int{1, 2, 5, 10}
	hedgedOut := make([]*stats.Sample, len(sfs))
	mittOut := make([]*stats.Sample, len(sfs))
	var ls legs
	for i, sf := range sfs {
		// A user request fans out to SF gets; spacing user requests SF×
		// apart keeps the per-node IO load constant across panels (the
		// paper's closed-loop YCSB clients self-limit the same way).
		sopt := opt
		sopt.Interval = opt.Interval * time.Duration(sf)
		i, sf, sopt := i, sf, sopt
		ls.add(func(a *legArena) {
			fh := a.newFleet(sopt, fleetDisk, false, fmt.Sprintf("hedged-sf%d", sf))
			fh.addEC2DiskNoise(sopt)
			_, hedgedUser := fh.runClients(sopt, &cluster.HedgedStrategy{C: fh.c, HedgeAfter: p95}, sf)
			hedgedOut[i] = hedgedUser
		})
		ls.add(func(a *legArena) {
			fm := a.newFleet(sopt, fleetDisk, true, fmt.Sprintf("mitt-sf%d", sf))
			fm.addEC2DiskNoise(sopt)
			_, mittUser := fm.runClients(sopt, &cluster.MittOSStrategy{C: fm.c, Deadline: p95}, sf)
			mittOut[i] = mittUser
		})
	}
	runLegs(opt.Workers, ls)
	for i, sf := range sfs {
		res.Series = append(res.Series,
			Series{Name: fmt.Sprintf("Hedged-SF%d", sf), Sample: hedgedOut[i]},
			Series{Name: fmt.Sprintf("MittCFQ-SF%d", sf), Sample: mittOut[i]},
		)
		row := stats.ReductionRow(mittOut[i], hedgedOut[i])
		cells := []string{fmt.Sprintf("%d", sf)}
		for _, v := range row {
			cells = append(cells, stats.FormatPct(v))
		}
		tb.AddRow(cells...)
	}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"table: % latency reduction of MittCFQ vs Hedged per scale factor")
	return res
}

// Fig10 reproduces Figure 10: tail sensitivity to injected prediction error
// on the Fig5 setup. Panel (a) injects false negatives (suppressed EBUSY),
// panel (b) false positives (spurious EBUSY), at E ∈ {20%, 60%, 100%}
// (§7.7).
func Fig10(opt Options) *Result {
	res := &Result{ID: "fig10", Title: "Tail sensitivity to prediction error (§7.7)"}
	p95, baseIO := baselineP95(opt, fleetDisk, true)
	res.Notes = append(res.Notes, fmt.Sprintf("deadline = %v", p95))
	res.Series = append(res.Series, Series{Name: "Base", Sample: baseIO})

	// Stage 2: seven injection points, one hermetic leg each.
	type inj struct {
		name   string
		fn, fp float64
	}
	points := []inj{{"NoError", 0, 0}}
	for _, e := range []float64{0.2, 0.6, 1.0} {
		points = append(points, inj{fmt.Sprintf("FalseNeg-%d%%", int(e*100)), e, 0})
	}
	for _, e := range []float64{0.2, 0.6, 1.0} {
		points = append(points, inj{fmt.Sprintf("FalsePos-%d%%", int(e*100)), 0, e})
	}
	outs := make([]*stats.Sample, len(points))
	var ls legs
	for i, pt := range points {
		i, pt := i, pt
		ls.add(func(a *legArena) {
			f := a.newFleet(opt, fleetDisk, true, pt.name)
			f.addEC2DiskNoise(opt)
			for _, n := range f.c.Nodes {
				n.MittCFQ.SetErrorInjection(pt.fn, pt.fp, sim.NewRNG(opt.Seed, "inj-"+pt.name))
			}
			io, _ := f.runClients(opt, &cluster.MittOSStrategy{C: f.c, Deadline: p95}, 1)
			outs[i] = io
		})
	}
	runLegs(opt.Workers, ls)
	for i, pt := range points {
		res.Series = append(res.Series, Series{Name: pt.name, Sample: outs[i]})
	}
	return res
}

// deadlineFor exposes the measured baseline p95 for reuse by callers that
// need the paper's deadline value without rerunning Fig5.
func deadlineFor(opt Options, kind fleetKind, withNoise bool) time.Duration {
	p95, _ := baselineP95(opt, kind, withNoise)
	return p95
}
