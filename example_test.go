package mittos_test

import (
	"fmt"
	"time"

	"mittos"
)

// The canonical MittOS interaction: attach a deadline SLO to a read; a busy
// stack rejects it in microseconds instead of queueing it for tens of
// milliseconds.
func ExampleStack_Read() {
	eng := mittos.NewEngine()
	stack := mittos.NewStack(eng, mittos.StackConfig{
		Device: mittos.DeviceDisk,
		Mitt:   true,
		Seed:   1,
	})
	// A noisy neighbor has 12 large reads queued.
	for i := 0; i < 12; i++ {
		stack.Read(int64(i+1)*(60<<30), 1<<20, 0, func(error) {})
	}
	stack.Read(500<<30, 4096, 15*time.Millisecond, func(err error) {
		if mittos.IsBusy(err) {
			fmt.Println("EBUSY: retry another replica")
			return
		}
		fmt.Println("completed")
	})
	eng.Run()
	// Output: EBUSY: retry another replica
}

// The §8.1 extension: every rejection carries the predicted wait, so the
// application can pick the least-busy replica instead of retrying blind.
func ExampleBusyError() {
	eng := mittos.NewEngine()
	stack := mittos.NewStack(eng, mittos.StackConfig{
		Device: mittos.DeviceDisk,
		Mitt:   true,
		Seed:   1,
	})
	for i := 0; i < 12; i++ {
		stack.Read(int64(i+1)*(60<<30), 1<<20, 0, func(error) {})
	}
	stack.Read(500<<30, 4096, 15*time.Millisecond, func(err error) {
		if be, ok := err.(*mittos.BusyError); ok {
			fmt.Printf("busy for at least another %v\n", be.PredictedWait > 15*time.Millisecond)
		}
	})
	eng.Run()
	// Output: busy for at least another true
}

// addrcheck() before touching an mmap-ed range (§4.4): resident data is
// safe to dereference; swapped-out data bounces instead of page-faulting
// for milliseconds.
func ExampleStack_AddrCheck() {
	eng := mittos.NewEngine()
	stack := mittos.NewStack(eng, mittos.StackConfig{
		Device:     mittos.DeviceDisk,
		Mitt:       true,
		CachePages: 1000,
		Seed:       1,
	})
	stack.Cache.Warm(0, 4096)
	fmt.Println("resident:", stack.AddrCheck(0, 4096, 100*time.Microsecond) == nil)
	stack.Cache.EvictRange(0, 4096) // memory contention swaps the page out
	err := stack.AddrCheck(0, 4096, 100*time.Microsecond)
	fmt.Println("after eviction busy:", mittos.IsBusy(err))
	eng.Run()
	// Output:
	// resident: true
	// after eviction busy: true
}

// Regenerating one of the paper's figures programmatically.
func ExampleRunExperiment() {
	res, err := mittos.RunExperiment("writes", true)
	if err != nil {
		panic(err)
	}
	nn := res.FindSeries("NoNoise").Sample
	base := res.FindSeries("Base").Sample
	// §7.8.6: write latencies are unaffected by disk noise.
	ratio := float64(base.Percentile(95)) / float64(nn.Percentile(95))
	fmt.Println("write p95 inflated by noise:", ratio > 1.5)
	// Output: write p95 inflated by noise: false
}
