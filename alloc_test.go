package mittos

import (
	"testing"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/cluster"
	"mittos/internal/core"
	"mittos/internal/disk"
	"mittos/internal/kv"
	"mittos/internal/netsim"
	"mittos/internal/sim"
	"mittos/internal/stats"
	"mittos/internal/ycsb"
)

// allocDiskProfile is computed once; profiling is deterministic and only
// the Mitt put pin needs it.
var allocDiskProfile = disk.ProfileTwin(disk.DefaultConfig(),
	42, disk.ProfilerOptions{Buckets: 32, Tries: 6, ProbeSize: 4096})

// syncStrategy completes every get synchronously — the cheapest possible
// strategy, isolating the client loop itself for the tick pins.
type syncStrategy struct{}

func (syncStrategy) Name() string { return "sync" }

func (syncStrategy) Get(key int64, onDone func(cluster.GetResult)) {
	onDone(cluster.GetResult{Latency: time.Microsecond, Tries: 1})
}

// newAllocCluster builds a minimal 3-node replicated cluster for the put
// issue-path pins, mirroring the experiment fleet shape.
func newAllocCluster(name string, mitt bool) (*sim.Engine, *cluster.Cluster) {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.DefaultConfig(), sim.NewRNG(61, name+"-net"))
	tmpl := cluster.NodeConfig{
		Device:      cluster.DeviceDisk,
		DiskConfig:  disk.DefaultConfig(),
		UseCFQ:      true,
		Mitt:        mitt,
		MittOptions: core.DefaultOptions(),
		Keys:        10000,
		DiskProfile: allocDiskProfile,
	}
	return eng, cluster.NewCluster(eng, net, 3, 3, tmpl, sim.NewRNG(62, name))
}

// TestAllocBudgets pins the steady-state allocation budgets of the two
// hottest paths. These are hard budgets, not aspirations: a regression
// here silently multiplies across every experiment's millions of IOs.
func TestAllocBudgets(t *testing.T) {
	t.Run("AdmissionDecision", func(t *testing.T) {
		eng := NewEngine()
		s := NewStack(eng, StackConfig{Device: DeviceDisk, Scheduler: SchedulerNoop, Mitt: true, Seed: 1})
		for i := 0; i < 16; i++ {
			s.Read(int64(i+1)*(40<<30), 1<<20, 0, func(error) {})
		}
		_ = s.PredictWait(100<<30, 4096) // warm the SSTF-replay scratch
		avg := testing.AllocsPerRun(200, func() {
			_ = s.PredictWait(450<<30, 4096)
		})
		if avg != 0 {
			t.Fatalf("PredictWait allocates %.1f objects per call; budget is 0", avg)
		}
	})
	t.Run("CFQPredictWait", func(t *testing.T) {
		eng := NewEngine()
		s := NewStack(eng, StackConfig{Device: DeviceDisk, Scheduler: SchedulerCFQ, Mitt: true, Seed: 1})
		// Populate several process nodes so the prefix queries walk real
		// trees, plus a device-resident quantum for the mirror replay.
		for i := 0; i < 16; i++ {
			req := &blockio.Request{ID: uint64(i + 1), Op: blockio.Read,
				Offset: int64(i+1) * (40 << 30), Size: 1 << 20, Proc: i % 5}
			s.Target().SubmitSLO(req, func(error) {})
		}
		_ = s.PredictWait(100<<30, 4096) // warm the replay scratch
		avg := testing.AllocsPerRun(200, func() {
			_ = s.PredictWait(450<<30, 4096)
		})
		if avg != 0 {
			t.Fatalf("CFQ PredictWait allocates %.1f objects per call; budget is 0", avg)
		}
	})
	t.Run("CFQSubmitAccept", func(t *testing.T) {
		// Full accept round trip through MittCFQ with an SLO: admission,
		// tolerable-table entry, dispatch, completion, recycling. Requests
		// come from a pool so the path itself is what's measured.
		eng := NewEngine()
		s := NewStack(eng, StackConfig{Device: DeviceDisk, Scheduler: SchedulerCFQ, Mitt: true, Seed: 1})
		var pool blockio.Pool
		var ids blockio.IDGen
		var cur *blockio.Request
		done := func(error) { cur.Release() }
		submit := func(off int64) {
			cur = pool.Get()
			cur.ID = ids.Next()
			cur.Op = blockio.Read
			cur.Offset, cur.Size = off, 4096
			cur.Proc = 1
			cur.Deadline = time.Second
			s.Target().SubmitSLO(cur, done)
			eng.Run()
		}
		for i := 0; i < 64; i++ { // warm every pool on the path
			submit(int64(i+1) * (10 << 30))
		}
		avg := testing.AllocsPerRun(200, func() {
			submit(300 << 30)
		})
		if avg != 0 {
			t.Fatalf("MittCFQ accept path allocates %.1f objects per IO; budget is 0", avg)
		}
	})
	t.Run("EngineSchedule", func(t *testing.T) {
		eng := NewEngine()
		// Warm the event freelist.
		for i := 0; i < 64; i++ {
			eng.After(time.Duration(i+1)*time.Microsecond, func() {})
		}
		eng.Run()
		avg := testing.AllocsPerRun(200, func() {
			eng.After(time.Microsecond, func() {})
			eng.Run()
		})
		if avg != 0 {
			t.Fatalf("After+Run allocates %.1f objects per event; budget is 0", avg)
		}
	})
	t.Run("EngineResetReuse", func(t *testing.T) {
		// Leg arenas recycle engines across experiment legs; a warmed
		// engine running a multi-level event mix then Reset must not
		// allocate — the timing wheel's slot arrays are fixed engine
		// fields and dropped events return to the freelist.
		eng := NewEngine()
		leg := func() {
			for i := 0; i < 64; i++ {
				eng.After(time.Duration(i+1)*100*time.Microsecond, func() {})
			}
			eng.RunFor(3 * time.Millisecond)
			eng.Reset()
		}
		leg() // warm the freelist
		avg := testing.AllocsPerRun(100, leg)
		if avg != 0 {
			t.Fatalf("Reset-then-reuse allocates %.1f objects per leg; budget is 0", avg)
		}
	})
	t.Run("PutAccepted", func(t *testing.T) {
		// The accepted durable-put round trip: WAL group assembly, SLO
		// admission through MittCFQ, dispatch, completion, memtable apply,
		// and memory-latency ack — every context on the path is pooled.
		eng := NewEngine()
		s := NewStack(eng, StackConfig{Device: DeviceDisk, Scheduler: SchedulerCFQ, Mitt: true, Seed: 1})
		cfg := kv.DefaultConfig(0, 100<<30)
		cfg.MemtableCap = 1 << 30 // isolate the WAL path: never flush
		var ids blockio.IDGen
		st := kv.New(eng, cfg, s.Target(), &ids)
		done := func(error) {}
		put := func() {
			st.PutDurable(7, time.Second, done)
			eng.Run()
		}
		for i := 0; i < 64; i++ { // warm every pool on the path
			put()
		}
		avg := testing.AllocsPerRun(200, func() {
			put()
		})
		if avg != 0 {
			t.Fatalf("accepted durable put allocates %.1f objects per op; budget is 0", avg)
		}
	})
	t.Run("PoissonTick", func(t *testing.T) {
		// The open-loop Poisson issue path: exponential gap draw, tick,
		// pooled user-request context, synchronous completion, recycling.
		// The loadsweep experiment takes this path millions of times per
		// leg, so it carries the same zero budget as the fixed-interval
		// loop.
		eng := NewEngine()
		strat := &syncStrategy{}
		wl := ycsb.New(ycsb.DefaultConfig(10000), sim.NewRNG(9, "alloc-poisson-wl"))
		cfg := cluster.ClientConfig{
			Interval: 100 * time.Microsecond, Arrival: cluster.ArrivalPoisson,
			ScaleFactor: 1, ExpectedOps: 1 << 16,
			Inflight: &cluster.InflightGauge{}, SLO: time.Millisecond,
		}
		cl := cluster.NewClient(eng, cfg, strat, wl, sim.NewRNG(9, "alloc-poisson-cl"))
		cl.Start()
		eng.RunFor(10 * time.Millisecond) // warm the context pool
		avg := testing.AllocsPerRun(200, func() {
			eng.RunFor(time.Millisecond)
		})
		if avg != 0 {
			t.Fatalf("Poisson tick allocates %.1f objects per millisecond of ticks; budget is 0", avg)
		}
	})
	t.Run("CORecording", func(t *testing.T) {
		// Coordinated-omission-corrected recording on a pre-sized sample:
		// the raw observation plus the synthetic back-fill loop.
		s := stats.NewSample(1 << 14)
		for i := 0; i < 64; i++ {
			s.AddCO(55*time.Millisecond, 10*time.Millisecond)
		}
		avg := testing.AllocsPerRun(200, func() {
			s.AddCO(55*time.Millisecond, 10*time.Millisecond)
		})
		if avg != 0 {
			t.Fatalf("AddCO allocates %.1f objects per record; budget is 0", avg)
		}
	})
	t.Run("YCSBNext", func(t *testing.T) {
		// Op generation is pure RNG arithmetic over a value-typed Op; the
		// mixed zipfian config exercises the read, insert, and update
		// branches plus the skewed key draw.
		cfg := ycsb.DefaultConfig(100000)
		cfg.ReadFraction = 0.5
		cfg.InsertFraction = 0.5
		cfg.Dist = ycsb.Zipfian
		w := ycsb.New(cfg, sim.NewRNG(9, "alloc-ycsb"))
		for i := 0; i < 64; i++ {
			_ = w.Next()
			_ = w.NextKey()
		}
		avg := testing.AllocsPerRun(200, func() {
			_ = w.Next()
			_ = w.NextKey()
		})
		if avg != 0 {
			t.Fatalf("YCSB op generation allocates %.1f objects per op; budget is 0", avg)
		}
	})
	t.Run("BasePutIssue", func(t *testing.T) {
		// The full replicated-put round trip on the vanilla stack: op and
		// quorum scratch from the cluster pools, three serve contexts, WAL
		// commit, acks, and recycling — the steady-state write driver.
		eng, c := newAllocCluster("alloc-baseput", false)
		ps := &cluster.BasePut{C: c}
		done := func(cluster.PutResult) {}
		put := func() {
			ps.Put(7, done)
			eng.Run()
		}
		for i := 0; i < 64; i++ { // warm every pool on the path
			put()
		}
		avg := testing.AllocsPerRun(200, put)
		if avg != 0 {
			t.Fatalf("BasePut issue path allocates %.1f objects per op; budget is 0", avg)
		}
	})
	t.Run("MittOSPutIssue", func(t *testing.T) {
		// Same round trip through the SLO-aware strategy: wait-hint probe,
		// admission on each replica, quorum bookkeeping, and the accepted
		// completion. On an idle fleet every copy is admitted, so this pins
		// the common no-rejection case.
		eng, c := newAllocCluster("alloc-mittput", true)
		ps := &cluster.MittOSPut{C: c, Deadline: time.Second, UseWaitHint: true}
		done := func(cluster.PutResult) {}
		put := func() {
			ps.Put(7, done)
			eng.Run()
		}
		for i := 0; i < 64; i++ { // warm every pool on the path
			put()
		}
		avg := testing.AllocsPerRun(200, put)
		if avg != 0 {
			t.Fatalf("MittOSPut issue path allocates %.1f objects per op; budget is 0", avg)
		}
	})
}
