package mittos

import (
	"testing"
	"time"
)

// TestAllocBudgets pins the steady-state allocation budgets of the two
// hottest paths. These are hard budgets, not aspirations: a regression
// here silently multiplies across every experiment's millions of IOs.
func TestAllocBudgets(t *testing.T) {
	t.Run("AdmissionDecision", func(t *testing.T) {
		eng := NewEngine()
		s := NewStack(eng, StackConfig{Device: DeviceDisk, Scheduler: SchedulerNoop, Mitt: true, Seed: 1})
		for i := 0; i < 16; i++ {
			s.Read(int64(i+1)*(40<<30), 1<<20, 0, func(error) {})
		}
		_ = s.PredictWait(100<<30, 4096) // warm the SSTF-replay scratch
		avg := testing.AllocsPerRun(200, func() {
			_ = s.PredictWait(450<<30, 4096)
		})
		if avg != 0 {
			t.Fatalf("PredictWait allocates %.1f objects per call; budget is 0", avg)
		}
	})
	t.Run("EngineSchedule", func(t *testing.T) {
		eng := NewEngine()
		// Warm the event freelist.
		for i := 0; i < 64; i++ {
			eng.After(time.Duration(i+1)*time.Microsecond, func() {})
		}
		eng.Run()
		avg := testing.AllocsPerRun(200, func() {
			eng.After(time.Microsecond, func() {})
			eng.Run()
		})
		if avg != 0 {
			t.Fatalf("After+Run allocates %.1f objects per event; budget is 0", avg)
		}
	})
}
