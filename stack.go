package mittos

import (
	"fmt"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/core"
	"mittos/internal/disk"
	"mittos/internal/iosched"
	"mittos/internal/oscache"
	"mittos/internal/sim"
	"mittos/internal/ssd"
)

// DiskConfig / SSDConfig aliases let callers tune device models without
// importing internal packages.
type (
	DiskConfig = disk.Config
	SSDConfig  = ssd.Config
)

// DefaultDiskConfig and DefaultSSDConfig return the paper-calibrated
// device models (1TB disk with 6–10ms random 4KB reads; 16-channel
// OpenChannel SSD with 100µs page reads).
func DefaultDiskConfig() DiskConfig { return disk.DefaultConfig() }

// DefaultSSDConfig returns the OpenChannel SSD model of §4.3.
func DefaultSSDConfig() SSDConfig { return ssd.DefaultConfig() }

// SchedulerKind selects the IO scheduler for disk stacks.
type SchedulerKind int

// Supported schedulers. SSDs bypass block-level scheduling (§4.3), so the
// setting is ignored for SSD stacks.
const (
	SchedulerCFQ SchedulerKind = iota
	SchedulerNoop
	// SchedulerDeadline is the Linux deadline scheduler with the
	// MittDeadline admission layer — the queueing-discipline-generality
	// demonstration of §3.4.
	SchedulerDeadline
)

// StackConfig shapes a single-node SLO-aware storage stack.
type StackConfig struct {
	// Device picks the medium (DeviceDisk or DeviceSSD).
	Device DeviceKind
	// Scheduler picks noop vs CFQ for disk stacks.
	Scheduler SchedulerKind
	// Mitt enables the MittOS admission layer; false builds the vanilla
	// stack (deadlines ignored).
	Mitt bool
	// MittOptions tune the admission layer; zero value → DefaultOptions.
	MittOptions Options
	// CachePages > 0 inserts an OS page cache of that size (in 4KB
	// pages), fronted by MittCache when Mitt is set.
	CachePages int
	// DiskConfig / SSDConfig override the device model; zero values use
	// the paper-calibrated defaults.
	DiskConfig disk.Config
	SSDConfig  ssd.Config
	// Seed drives the device model's randomness.
	Seed int64
}

// Stack is a single node's storage stack: device → scheduler → (optional)
// page cache, with the matching MittOS layer when enabled. It is the
// programmatic equivalent of opening a file on a MittOS kernel.
type Stack struct {
	eng *Engine

	Disk  *disk.Disk
	SSD   *ssd.SSD
	Cache *oscache.Cache

	target core.Target
	block  core.Target // block-layer entry under the cache

	mittNoop     *core.MittNoop
	mittCFQ      *core.MittCFQ
	mittSSD      *core.MittSSD
	mittCache    *core.MittCache
	mittDeadline *core.MittDeadline

	ids blockio.IDGen
}

// NewStack assembles the stack on the engine.
func NewStack(eng *Engine, cfg StackConfig) *Stack {
	s := &Stack{eng: eng}
	opt := cfg.MittOptions
	if opt == (Options{}) {
		opt = DefaultOptions()
	}
	rng := sim.NewRNG(cfg.Seed, "stack-device")

	var ioTarget core.Target
	var minIO time.Duration
	switch cfg.Device {
	case DeviceSSD:
		scfg := cfg.SSDConfig
		if scfg.Channels == 0 {
			scfg = ssd.DefaultConfig()
		}
		s.SSD = ssd.New(eng, scfg)
		minIO = scfg.ChipReadTime + scfg.ChannelXferTime
		if cfg.Mitt {
			s.mittSSD = core.NewMittSSD(eng, s.SSD, opt)
			ioTarget = s.mittSSD
		} else {
			ioTarget = &core.Vanilla{Dev: s.SSD}
		}
	default:
		dcfg := cfg.DiskConfig
		if dcfg.CapacityBytes == 0 {
			dcfg = disk.DefaultConfig()
		}
		s.Disk = disk.New(eng, dcfg, rng)
		minIO = dcfg.SeqCost
		prof := disk.ProfileTwin(dcfg, 42, disk.DefaultProfilerOptions())
		if cfg.Scheduler == SchedulerNoop {
			nop := iosched.NewNoop(eng, s.Disk)
			if cfg.Mitt {
				s.mittNoop = core.NewMittNoop(eng, nop, prof, opt)
				ioTarget = s.mittNoop
			} else {
				ioTarget = &core.Vanilla{Dev: nop}
			}
		} else if cfg.Scheduler == SchedulerDeadline {
			dl := iosched.NewDeadline(eng, iosched.DefaultDeadlineConfig(), s.Disk)
			if cfg.Mitt {
				s.mittDeadline = core.NewMittDeadline(eng, dl, prof, opt)
				ioTarget = s.mittDeadline
			} else {
				ioTarget = &core.Vanilla{Dev: dl}
			}
		} else {
			cfq := iosched.NewCFQ(eng, iosched.DefaultCFQConfig(), s.Disk)
			if cfg.Mitt {
				s.mittCFQ = core.NewMittCFQ(eng, cfq, prof, opt)
				ioTarget = s.mittCFQ
			} else {
				ioTarget = &core.Vanilla{Dev: cfq}
			}
		}
	}
	s.block = ioTarget

	s.target = ioTarget
	if cfg.CachePages > 0 {
		ccfg := oscache.DefaultConfig()
		ccfg.CapacityPages = cfg.CachePages
		s.Cache = oscache.New(eng, ccfg, &targetDevice{t: ioTarget})
		if cfg.Mitt {
			s.mittCache = core.NewMittCache(eng, s.Cache, ioTarget, minIO, opt)
			s.target = s.mittCache
		} else {
			s.target = &core.Vanilla{Dev: s.Cache}
		}
	}
	return s
}

// targetDevice adapts a Target to blockio.Device for cache read-through.
type targetDevice struct {
	t        core.Target
	inflight int
}

// Submit implements blockio.Device.
func (d *targetDevice) Submit(req *blockio.Request) {
	d.inflight++
	d.t.SubmitSLO(req, func(error) { d.inflight-- })
}

// InFlight implements blockio.Device.
func (d *targetDevice) InFlight() int { return d.inflight }

// Target returns the stack's SLO-aware entry point for raw Request
// submission.
func (s *Stack) Target() Target { return s.target }

// Read issues a read of size bytes at off with the given deadline SLO
// (0 = no SLO). onDone receives nil on completion or ErrBusy on rejection —
// the read(..., slo) system call of §3.2.
func (s *Stack) Read(off int64, size int, deadline time.Duration, onDone func(error)) *Request {
	req := &blockio.Request{
		ID: s.ids.Next(), Op: blockio.Read, Offset: off, Size: size,
		Proc: 1, Deadline: deadline,
	}
	s.target.SubmitSLO(req, onDone)
	return req
}

// Write issues a write (no deadline semantics; §7.8.6).
func (s *Stack) Write(off int64, size int, onDone func(error)) *Request {
	req := &blockio.Request{
		ID: s.ids.Next(), Op: blockio.Write, Offset: off, Size: size, Proc: 1,
	}
	s.target.SubmitSLO(req, onDone)
	return req
}

// AddrCheck models the addrcheck(&addr, size, deadline) system call of
// §4.4: a page-table walk before touching an mmap-ed range. It returns nil
// when the application may proceed and ErrBusy when the range was swapped
// out under memory contention. Requires a cache-enabled, Mitt-enabled
// stack.
func (s *Stack) AddrCheck(off int64, size int, deadline time.Duration) error {
	if s.mittCache == nil {
		return fmt.Errorf("mittos: AddrCheck requires a Mitt-enabled stack with a page cache")
	}
	return s.mittCache.AddrCheck(off, size, deadline)
}

// PredictWait exposes the admission layer's current wait estimate for an IO
// at (off, size) — the signal behind every EBUSY decision.
func (s *Stack) PredictWait(off int64, size int) time.Duration {
	switch {
	case s.mittNoop != nil:
		return s.mittNoop.PredictWaitFor(off, size)
	case s.mittCFQ != nil:
		return s.mittCFQ.PredictWait(1, blockio.ClassBestEffort)
	case s.mittSSD != nil:
		return s.mittSSD.PredictWait(off, size)
	case s.mittDeadline != nil:
		return s.mittDeadline.PredictWait()
	default:
		return 0
	}
}

// Accuracy returns shadow-mode counters from whichever Mitt layer is
// active (zero value when Mitt is disabled).
func (s *Stack) Accuracy() Accuracy {
	switch {
	case s.mittNoop != nil:
		return s.mittNoop.Accuracy()
	case s.mittCFQ != nil:
		return s.mittCFQ.Accuracy()
	case s.mittSSD != nil:
		return s.mittSSD.Accuracy()
	case s.mittDeadline != nil:
		return s.mittDeadline.Accuracy()
	default:
		return Accuracy{}
	}
}
