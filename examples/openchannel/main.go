// Openchannel: MittSSD at chip granularity. A tenant writes a hot range of
// a host-managed SSD; reads mapped to the same chips queue behind 1–2ms
// page programs while the rest of the device stays fast. MittSSD's
// per-chip next-free times reject exactly the reads that would stall
// (§4.3), including whole-request rejection for striped reads.
//
//	go run ./examples/openchannel
package main

import (
	"fmt"
	"time"

	"mittos"
)

func main() {
	eng := mittos.NewEngine()
	cfg := mittos.DefaultSSDConfig()
	stack := mittos.NewStack(eng, mittos.StackConfig{
		Device:    mittos.DeviceSSD,
		SSDConfig: cfg,
		Mitt:      true,
		Seed:      1,
	})
	pageSize := int64(cfg.PageSize)

	// The writer hammers logical pages 0..15 — which stripe onto the
	// first 16 chips (one per channel).
	hotPages := int64(16)
	var writeLoop func()
	writeLoop = func() {
		stack.Write(0, int(hotPages)*cfg.PageSize, func(error) { writeLoop() })
	}
	writeLoop()
	eng.RunFor(5 * time.Millisecond) // let programs queue up

	deadline := time.Millisecond
	fmt.Printf("writer owns chips 0..15; read deadline = %v\n\n", deadline)

	probe := func(label string, page int64) {
		start := eng.Now()
		stack.Read(page*pageSize, 4096, deadline, func(err error) {
			took := eng.Now().Sub(start)
			if mittos.IsBusy(err) {
				fmt.Printf("%-28s EBUSY in %v (chip busy programming)\n", label, took)
				return
			}
			fmt.Printf("%-28s ok in %v\n", label, took)
		})
		eng.RunFor(2 * time.Millisecond)
	}

	probe("read page 3 (hot chip)", 3)
	probe("read page 40 (idle chip)", 40)
	probe("read page 100 (idle chip)", 100)

	// Striped read: 4 pages, one of them on a hot chip → the WHOLE
	// request is rejected and nothing is submitted (§4.3).
	start := eng.Now()
	stack.Read(14*pageSize, 4*cfg.PageSize, deadline, func(err error) {
		took := eng.Now().Sub(start)
		if mittos.IsBusy(err) {
			fmt.Printf("%-28s EBUSY in %v (one sub-page violates → all rejected)\n",
				"striped read pages 14-17", took)
			return
		}
		fmt.Printf("%-28s ok in %v\n", "striped read pages 14-17", took)
	})
	eng.RunFor(2 * time.Millisecond)

	fmt.Printf("\npredicted wait on hot page:  %v\n", stack.PredictWait(3*pageSize, 4096))
	fmt.Printf("predicted wait on idle page: %v\n", stack.PredictWait(40*pageSize, 4096))
}
