// Quickstart: the MittOS principle on one storage stack in ~40 lines.
//
// A tenant reads with a 15ms deadline SLO. While the disk is idle the reads
// complete normally; once a noisy neighbor floods the queue, MittOS
// predicts the deadline cannot be met and returns EBUSY *immediately*
// instead of letting the read wait — the application learns about the
// contention in microseconds, not milliseconds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"mittos"
)

func main() {
	eng := mittos.NewEngine()
	stack := mittos.NewStack(eng, mittos.StackConfig{
		Device: mittos.DeviceDisk,
		Mitt:   true,
		Seed:   1,
	})

	read := func(label string) {
		issued := eng.Now()
		stack.Read(500<<30, 4096, 15*time.Millisecond, func(err error) {
			took := eng.Now().Sub(issued)
			if mittos.IsBusy(err) {
				be := err.(*mittos.BusyError)
				fmt.Printf("%-12s EBUSY after %8v (predicted wait %v)\n",
					label, took, be.PredictedWait.Round(time.Millisecond))
				return
			}
			fmt.Printf("%-12s ok    after %8v\n", label, took.Round(time.Microsecond))
		})
	}

	fmt.Println("-- idle disk: the deadline is met, the read completes --")
	read("idle")
	eng.Run()

	fmt.Println("-- noisy neighbor floods the queue with 1MB reads --")
	for i := 0; i < 12; i++ {
		stack.Read(int64(i+1)*(60<<30), 1<<20, 0, func(error) {})
	}
	fmt.Printf("predicted wait is now %v — far past the 15ms deadline\n",
		stack.PredictWait(500<<30, 4096).Round(time.Millisecond))
	read("contended")
	eng.Run()

	fmt.Println("-- the fast rejection means the app can retry a replica for +0.3ms --")
}
