// Failover: a 3-replica store with one noisy node, comparing every
// client-side tail-tolerance strategy from the paper side by side — the
// §7.2 experiment in miniature.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"time"

	"mittos"
	"mittos/internal/blockio"
	"mittos/internal/noise"
	"mittos/internal/stats"
	"mittos/internal/ycsb"
)

const (
	keys     = 20000
	deadline = 15 * time.Millisecond
	requests = 2000
)

func main() {
	fmt.Println("3-replica store, one replica under steady 1MB-read contention")
	fmt.Printf("deadline / hedge trigger / timeout: %v\n\n", deadline)
	tb := &stats.Table{Header: []string{"strategy", "avg", "p50", "p95", "p99", "max"}}
	for _, name := range []string{"Base", "AppTO", "Clone", "Tied", "Hedged", "Snitch", "MittOS"} {
		s := run(name)
		tb.AddRow(name,
			stats.FormatDuration(s.Mean()),
			stats.FormatDuration(s.Percentile(50)),
			stats.FormatDuration(s.Percentile(95)),
			stats.FormatDuration(s.Percentile(99)),
			stats.FormatDuration(s.Max()))
	}
	fmt.Print(tb.String())
	fmt.Println("\nMittOS never waits on the busy replica: EBUSY arrives in µs and")
	fmt.Println("the retry costs one network hop (~0.3ms) instead of a queueing delay.")
}

// run executes one strategy against a fresh, identically-seeded cluster.
func run(name string) *stats.Sample {
	eng := mittos.NewEngine()
	net := mittos.NewNetwork(eng, 0, mittos.NewRNG(1, "net"))
	tmpl := mittos.NodeConfig{
		Device:      mittos.DeviceDisk,
		DiskConfig:  mittos.DefaultDiskConfig(),
		UseCFQ:      true,
		Mitt:        true, // the layer is present; only MittOS *uses* deadlines
		MittOptions: mittos.DefaultOptions(),
		Keys:        keys,
		DiskProfile: mittos.DiskProfile(),
	}
	c := mittos.NewCluster(eng, net, 3, 3, tmpl, mittos.NewRNG(2, "nodes"))

	// The noisy neighbor camps on node 0.
	st := noise.NewSteady(eng, c.Nodes[0].NoiseSink(), mittos.NewRNG(3, "noise"),
		blockio.Read, 1<<20, 3, blockio.ClassBestEffort, 5, 99, 500<<30)
	st.Start()

	var strat mittos.Strategy
	switch name {
	case "Base":
		strat = &mittos.BaseStrategy{C: c}
	case "AppTO":
		strat = &mittos.TimeoutStrategy{C: c, TO: deadline}
	case "Clone":
		strat = &mittos.CloneStrategy{C: c, RNG: mittos.NewRNG(4, "clone")}
	case "Tied":
		strat = &mittos.TiedStrategy{C: c, RNG: mittos.NewRNG(4, "tied")}
	case "Hedged":
		strat = &mittos.HedgedStrategy{C: c, HedgeAfter: deadline}
	case "Snitch":
		strat = &mittos.SnitchStrategy{C: c}
	case "MittOS":
		strat = &mittos.MittOSStrategy{C: c, Deadline: deadline}
	}

	wl := ycsb.New(ycsb.DefaultConfig(keys), mittos.NewRNG(5, "wl"))
	lat := stats.NewSample(requests)
	done := 0
	var issue func()
	issue = func() {
		if done >= requests {
			return
		}
		eng.Schedule(5*time.Millisecond, func() {
			start := eng.Now()
			strat.Get(wl.NextKey(), func(mittos.GetResult) {
				lat.Add(eng.Now().Sub(start))
				done++
			})
			issue()
		})
	}
	issue()
	eng.RunFor(time.Duration(requests) * 6 * time.Millisecond)
	st.Stop()
	eng.RunFor(2 * time.Second)
	return lat
}
