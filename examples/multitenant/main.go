// Multitenant: a 20-node fleet with EC2-calibrated bursty neighbors and
// scale-factor fan-out — tail amplification by scale (§7.3) and how MittOS
// failover contains it.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"time"

	"mittos"
	"mittos/internal/experiments"
	"mittos/internal/stats"
)

func main() {
	opt := mittos.QuickScale()
	opt.Nodes = 12
	opt.Clients = 8

	fmt.Println("20-node-style fleet, EC2-calibrated bursty neighbors")
	fmt.Println("a user request = SF parallel gets; the user waits for all of them")
	fmt.Println()

	res := experiments.Fig6(opt)
	tb := &stats.Table{Header: []string{"scale factor", "Hedged p95", "MittOS p95", "reduction"}}
	for _, sf := range []string{"1", "2", "5", "10"} {
		h := res.FindSeries("Hedged-SF" + sf)
		m := res.FindSeries("MittCFQ-SF" + sf)
		if h == nil || m == nil {
			continue
		}
		hp, mp := h.Sample.Percentile(95), m.Sample.Percentile(95)
		tb.AddRow("SF="+sf,
			stats.FormatDuration(hp),
			stats.FormatDuration(mp),
			stats.FormatPct(stats.Reduction(mp, hp)))
	}
	fmt.Print(tb.String())
	fmt.Println()
	fmt.Println("The higher the fan-out, the more likely one sub-request lands on a")
	fmt.Println("busy node — and the more the no-wait failover is worth (§7.3: \"the")
	fmt.Println("higher the scale factor, the more reduction MittOS delivers\").")
	_ = time.Now
}
