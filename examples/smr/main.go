// SMR: the §8.2 extension in action. A host-aware shingled drive absorbs
// random writes into its persistent cache until band cleaning kicks in —
// a background read-modify-write that stalls reads for hundreds of
// milliseconds. MittSMR knows when a clean is running (host-aware zone
// activity) and rejects deadline reads that cannot survive it.
//
//	go run ./examples/smr
package main

import (
	"fmt"
	"time"

	"mittos"
)

func main() {
	eng := mittos.NewEngine()
	cfg := mittos.DefaultSMRConfig()
	cfg.CacheBytes = 128 << 20 // small cache so cleaning starts quickly
	mitt, drive := mittos.NewSMRStack(eng, cfg, 1)

	wrng := mittos.NewRNG(2, "writes")
	prng := mittos.NewRNG(3, "probes")
	var ids uint64

	// A tenant rewrites a 256MB hot region at ~40MB/s. Each band of the
	// region accumulates tens of MB of cached writes, so every band clean
	// reclaims a big chunk and the cache oscillates between the
	// watermarks — the recurring-clean steady state of a busy SMR drive.
	eng.NewTicker(50*time.Millisecond, func() {
		ids++
		req := &mittos.Request{ID: ids, Op: mittos.OpWrite,
			Offset: wrng.Int63n(256<<20) &^ 4095, Size: 1 << 20}
		mitt.SubmitSLO(req, func(error) {})
	})

	// A latency-sensitive tenant reads with a 25ms deadline.
	accepted, rejected := 0, 0
	var worst time.Duration
	eng.NewTicker(25*time.Millisecond, func() {
		ids++
		start := eng.Now()
		req := &mittos.Request{ID: ids, Op: mittos.OpRead,
			Offset: prng.Int63n(900 << 30), Size: 4096,
			Deadline: 25 * time.Millisecond}
		mitt.SubmitSLO(req, func(err error) {
			if mittos.IsBusy(err) {
				rejected++
				return
			}
			accepted++
			if lat := eng.Now().Sub(start); lat > worst {
				worst = lat
			}
		})
	})

	for i := 0; i < 6; i++ {
		eng.RunFor(5 * time.Second)
		fmt.Printf("t=%2ds  cache=%3.0f%%  cleaning=%-5v cleans=%-3d  reads ok=%-4d EBUSY=%-4d (of which %d clean-rejections)\n",
			(i+1)*5, 100*drive.CacheFill(), drive.Cleaning(), drive.Cleans(),
			accepted, rejected, mitt.RejectedByClean())
	}
	fmt.Printf("\nworst accepted read: %v — without MittSMR, reads caught mid-clean\n", worst)
	fmt.Println("would stall for the whole band rewrite instead of bouncing in µs.")
}
