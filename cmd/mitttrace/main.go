// Command mitttrace synthesizes and characterizes the five enterprise
// block-trace workloads used by the §7.6 accuracy study (DAPPS, DTRS, EXCH,
// LMBE, TPCC).
//
// Usage:
//
//	mitttrace                      # characterize all five profiles
//	mitttrace -name EXCH -dur 2m   # one profile
//	mitttrace -name TPCC -busiest 30s -rerate 128
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mittos/internal/sim"
	"mittos/internal/stats"
	"mittos/internal/trace"
)

func main() {
	var (
		name    = flag.String("name", "", "profile name (default: all)")
		dur     = flag.Duration("dur", 5*time.Minute, "synthesized length")
		busiest = flag.Duration("busiest", 0, "extract the busiest window of this length")
		rerate  = flag.Float64("rerate", 1, "arrival-rate compression factor")
		seed    = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	profiles := trace.Profiles(500 << 30)
	if *name != "" {
		p, ok := trace.ProfileByName(*name, 500<<30)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown profile %q\n", *name)
			os.Exit(2)
		}
		profiles = []trace.Profile{p}
	}
	tb := &stats.Table{Header: []string{"trace", "records", "duration", "IOPS",
		"read%", "mean size", "total bytes"}}
	for _, p := range profiles {
		tr := trace.Generate(p, *dur, sim.NewRNG(*seed, p.Name))
		if *busiest > 0 {
			tr = tr.Busiest(*busiest)
		}
		if *rerate != 1 {
			tr = tr.Rerate(*rerate)
		}
		st := tr.Stats()
		tb.AddRow(tr.Name,
			fmt.Sprint(st.Records),
			st.Duration.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", st.IOPS),
			fmt.Sprintf("%.0f", 100*st.ReadFrac),
			fmt.Sprintf("%dKB", st.MeanSize/1024),
			fmt.Sprintf("%dMB", st.TotalSize>>20),
		)
	}
	fmt.Print(tb.String())
}
