// Command mittbench regenerates the tables and figures of the MittOS paper
// (SOSP '17) from the simulation-backed reproduction.
//
// Usage:
//
//	mittbench -list
//	mittbench -run fig5            # one experiment, quick scale
//	mittbench -run all -full       # everything at paper scale
//	mittbench -run fig3 -csv out/  # also dump CDF series as CSV
//
// Every run is deterministic: the same flags produce identical output.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mittos"
)

func main() {
	var (
		run  = flag.String("run", "", "experiment id (see -list), or 'all'")
		list = flag.Bool("list", false, "list experiment ids and exit")
		full = flag.Bool("full", false, "paper-scale runs (default: quick scale)")
		csv  = flag.String("csv", "", "directory to write per-series CDF CSVs into")
		plot = flag.Bool("plot", false, "render each experiment's CDFs as an ASCII chart")
		seed = flag.Int64("seed", 1, "simulation seed (same seed = identical output)")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments (pass one to -run, or 'all'):")
		for _, id := range mittos.Experiments() {
			fmt.Printf("  %s\n", id)
		}
		if *run == "" && !*list {
			os.Exit(2)
		}
		return
	}

	ids := []string{*run}
	if *run == "all" {
		ids = mittos.Experiments()
	}
	for _, id := range ids {
		start := time.Now()
		res, err := mittos.RunExperimentSeed(id, !*full, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(res)
		if *plot && len(res.Series) > 0 {
			fmt.Println(res.Plot(72, 18))
		}
		fmt.Printf("(regenerated %s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if *csv != "" {
			if err := dumpCSV(*csv, res); err != nil {
				fmt.Fprintln(os.Stderr, "csv:", err)
				os.Exit(1)
			}
		}
	}
}

// dumpCSV writes each series' CDF as <dir>/<id>-<series>.csv with
// latency-milliseconds, cumulative-probability rows.
func dumpCSV(dir string, res *mittos.ExperimentResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, s := range res.Series {
		name := strings.NewReplacer("/", "_", "%", "pct", "(", "", ")", "").Replace(s.Name)
		path := filepath.Join(dir, fmt.Sprintf("%s-%s.csv", res.ID, name))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		fmt.Fprintln(f, "latency_ms,cumulative_probability")
		for _, pt := range s.CDF(200) {
			fmt.Fprintf(f, "%.4f,%.5f\n", float64(pt.Latency)/1e6, pt.P)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
