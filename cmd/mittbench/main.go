// Command mittbench regenerates the tables and figures of the MittOS paper
// (SOSP '17) from the simulation-backed reproduction.
//
// Usage:
//
//	mittbench -list
//	mittbench -run fig5            # one experiment, quick scale
//	mittbench -run all -full       # everything at paper scale
//	mittbench -run fig3 -csv out/  # also dump CDF series as CSV
//	mittbench -run all -j 8        # 8-way parallel, identical output
//	mittbench -run all -j 1        # force the serial reference schedule
//	mittbench -run failslow        # graceful degradation under injected faults
//	mittbench -run failslow -faults 'failslow node=1 at=2s for=4s x=8; crash node=2 at=4s for=2s'
//	mittbench -run fig4 -metrics   # per-leg counters/histograms (§7.6 error)
//	mittbench -run fig4 -metrics -trace-ios 100   # + first 100 IO spans (JSONL)
//	mittbench -run fig4 -metrics -metrics-json m.json   # snapshots as JSON
//	mittbench -run loadsweep       # offered-load sweep: attainment/goodput curves
//	mittbench -run loadsweep -rates 0.5,0.9,1.1   # custom ×-saturation multipliers
//	mittbench -run loadsweep -sweep-json sweep.json   # per-cell results as JSON
//
// Every run is deterministic: the same flags produce identical output.
// -j only bounds the worker pool the independent simulation legs run on
// (and, for -run all, how many experiments are in flight at once); it
// never changes the bytes printed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"testing"
	"time"

	"mittos"
	"mittos/internal/blockio"
	"mittos/internal/disk"
	"mittos/internal/experiments"
	"mittos/internal/faults"
	"mittos/internal/kv"
	"mittos/internal/metrics"
	"mittos/internal/sim"
)

func main() {
	var (
		run  = flag.String("run", "", "experiment id (see -list), or 'all'")
		list = flag.Bool("list", false, "list experiment ids and exit")
		full = flag.Bool("full", false, "paper-scale runs (default: quick scale)")
		csv  = flag.String("csv", "", "directory to write per-series CDF CSVs into")
		plot = flag.Bool("plot", false, "render each experiment's CDFs as an ASCII chart")
		seed = flag.Int64("seed", 1, "simulation seed (same seed = identical output)")
		jobs = flag.Int("j", 0, "worker pool size for parallel simulation legs (0 = one per CPU, 1 = serial); output is identical for any value")

		faultsFlag = flag.String("faults", "", "fault schedule for -run failslow, e.g. 'failslow node=1 at=2s for=4s x=8; crash node=2 at=4s for=2s' (default: the experiment's built-in scenario)")

		ratesFlag = flag.String("rates", "", "comma-separated offered-load multipliers (× measured saturation) for -run loadsweep, e.g. '0.5,0.9,1.1' (default: the built-in 0.2→1.5 sweep)")
		sweepJSON = flag.String("sweep-json", "", "write the loadsweep experiment's per-cell results (throughput, percentiles, attainment, diagnostics) as a JSON array to this file")

		metricsOn   = flag.Bool("metrics", false, "collect per-layer counters/histograms and print an end-of-run dump per leg (fig4, fig7)")
		traceIOs    = flag.Int("trace-ios", 0, "with -metrics: capture the first N per-IO spans per leg and print them as JSONL (<0 = all)")
		metricsJSON = flag.String("metrics-json", "", "with -metrics: also write every snapshot as a JSON array to this file")
		benchJSON   = flag.String("bench-json", "", "run the headline benchmarks in-process and write ns/op, B/op, allocs/op as JSON to this file, then exit")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (inspect with `go tool pprof`)")
		memprofile = flag.String("memprofile", "", "write an end-of-run heap profile to this file (allocation sites need no extra flag: virtual time makes every run a profiling run)")
	)
	flag.Parse()

	stopProfiles := startProfiles(*cpuprofile, *memprofile)
	defer stopProfiles()
	fail := func(err error, code int) {
		fmt.Fprintln(os.Stderr, err)
		stopProfiles()
		os.Exit(code)
	}

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON); err != nil {
			fail(err, 1)
		}
		return
	}

	if *list || *run == "" {
		fmt.Println("experiments (pass one to -run, or 'all'):")
		for _, id := range mittos.Experiments() {
			fmt.Printf("  %s\n", id)
		}
		if *run == "" && !*list {
			stopProfiles()
			os.Exit(2)
		}
		return
	}

	if *faultsFlag != "" {
		if _, err := faults.ParseSchedule(*faultsFlag); err != nil {
			fail(err, 2)
		}
	}

	rates, err := parseRates(*ratesFlag)
	if err != nil {
		fail(err, 2)
	}

	ids := []string{*run}
	if *run == "all" {
		ids = mittos.Experiments()
	}

	workers := *jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Fan out across whole experiments too (they are independent), capped
	// at the same -j bound. Output is buffered per experiment and printed
	// in declaration order, so `-run all -j 8` emits the same bytes as a
	// serial run — only the "(regenerated ...)" timing lines differ.
	type outcome struct {
		text    string
		metrics []*metrics.Snapshot
		sweep   []experiments.SweepPoint
		err     error
	}
	outs := make([]outcome, len(ids))
	done := make([]chan struct{}, len(ids))
	for i := range done {
		done[i] = make(chan struct{})
	}
	sem := make(chan struct{}, workers)
	for i, id := range ids {
		i, id := i, id
		go func() {
			sem <- struct{}{}
			defer func() { <-sem }()
			defer close(done[i])
			start := time.Now()
			var msBefore, msAfter runtime.MemStats
			runtime.ReadMemStats(&msBefore)
			res, err := mittos.RunExperimentConfig(id, mittos.ExperimentConfig{
				Quick: !*full, Seed: *seed, Workers: workers,
				Metrics: *metricsOn, TraceIOs: *traceIOs, Faults: *faultsFlag,
				Rates: rates,
			})
			if err != nil {
				outs[i].err = err
				return
			}
			runtime.ReadMemStats(&msAfter)
			var b strings.Builder
			fmt.Fprintln(&b, res)
			if *plot && len(res.Series) > 0 {
				fmt.Fprintln(&b, res.Plot(72, 18))
			}
			if *metricsOn {
				writeMetrics(&b, res)
			}
			// GC stats ride the timing line — the one line already excluded
			// from the "identical bytes" determinism contract. (With -j > 1
			// experiments overlap, so the deltas attribute concurrent
			// allocation to whoever was running; still the right order of
			// magnitude for spotting an experiment-scale GC storm.)
			fmt.Fprintf(&b, "(regenerated %s in %v; heap %s, %d GCs, %v GC pause)\n\n",
				id, time.Since(start).Round(time.Millisecond),
				formatBytes(msAfter.HeapAlloc),
				msAfter.NumGC-msBefore.NumGC,
				time.Duration(msAfter.PauseTotalNs-msBefore.PauseTotalNs).Round(10*time.Microsecond))
			outs[i].text = b.String()
			outs[i].metrics = res.Metrics
			outs[i].sweep = res.Sweep
			if *csv != "" {
				// Experiments write disjoint <id>-prefixed files; safe
				// to dump concurrently.
				outs[i].err = dumpCSV(*csv, res)
			}
		}()
	}
	var allSnaps []*metrics.Snapshot
	var allSweep []experiments.SweepPoint
	for i := range ids {
		<-done[i]
		if outs[i].err != nil {
			fail(outs[i].err, 1)
		}
		fmt.Print(outs[i].text)
		allSnaps = append(allSnaps, outs[i].metrics...)
		allSweep = append(allSweep, outs[i].sweep...)
	}
	if *metricsJSON != "" {
		if err := dumpMetricsJSON(*metricsJSON, allSnaps); err != nil {
			fail(err, 1)
		}
	}
	if *sweepJSON != "" {
		if err := dumpSweepJSON(*sweepJSON, allSweep); err != nil {
			fail(err, 1)
		}
	}
}

// parseRates parses the -rates flag: comma-separated positive floats.
func parseRates(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("-rates: %w", err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("-rates: multiplier %v must be positive", v)
		}
		rates = append(rates, v)
	}
	return rates, nil
}

// dumpSweepJSON writes the loadsweep cells (experiments in print order,
// cells in table order) as one JSON array.
func dumpSweepJSON(path string, points []experiments.SweepPoint) error {
	if points == nil {
		points = []experiments.SweepPoint{}
	}
	j, err := json.MarshalIndent(points, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(j, '\n'), 0o644)
}

// startProfiles wires -cpuprofile/-memprofile and returns the idempotent
// finisher that stops the CPU profile and writes the heap snapshot.
func startProfiles(cpu, mem string) func() {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpu != "" {
			pprof.StopCPUProfile()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so live objects dominate the profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
	}
}

// benchSink defeats dead-code elimination in the SeekCost benchmark.
var benchSink time.Duration

// formatBytes renders a byte count with a binary-unit suffix.
func formatBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// benchResult is one headline benchmark's record in the -bench-json dump.
// The GC fields come from runtime.ReadMemStats deltas taken around the
// testing.Benchmark call: NumGC and GCPauseNs cover every trial run the
// harness made (N grows geometrically, so the final run dominates), and
// GCPauseNsPerOp divides the total pause by the final iteration count —
// an upper bound on the per-op pause cost, steady enough to gate on.
// HeapAllocBytes is the live heap right after the benchmark, with the
// preceding benchmarks' garbage already collected: what the benchmark's
// working set (pools, arenas, profiles) permanently retains.
type benchResult struct {
	Name           string  `json:"name"`
	Iterations     int     `json:"iterations"`
	NsPerOp        float64 `json:"ns_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	NumGC          uint32  `json:"num_gc"`
	GCPauseNs      uint64  `json:"gc_pause_ns"`
	GCPauseNsPerOp float64 `json:"gc_pause_ns_per_op"`
}

// runBenchJSON executes the headline benchmarks in-process (the same bodies
// as the go-test benchmarks) and writes their ns/op and allocation profile
// as a JSON array — the machine-readable artifact CI archives per commit.
func runBenchJSON(path string) error {
	var results []benchResult
	add := func(name string, fn func(b *testing.B)) {
		// Settle the previous benchmark's garbage so each measurement
		// starts from a quiet heap instead of inheriting GC debt.
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		r := testing.Benchmark(fn)
		runtime.ReadMemStats(&after)
		res := benchResult{
			Name:           name,
			Iterations:     r.N,
			NsPerOp:        float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:     r.AllocedBytesPerOp(),
			AllocsPerOp:    r.AllocsPerOp(),
			HeapAllocBytes: after.HeapAlloc,
			NumGC:          after.NumGC - before.NumGC,
			GCPauseNs:      after.PauseTotalNs - before.PauseTotalNs,
		}
		if r.N > 0 {
			res.GCPauseNsPerOp = float64(res.GCPauseNs) / float64(r.N)
		}
		results = append(results, res)
		fmt.Printf("%-24s %12.1f ns/op %12d B/op %8d allocs/op %6d GCs %10.1f GC-pause-ns/op\n",
			name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.NumGC, res.GCPauseNsPerOp)
	}

	add("Fig4", func(b *testing.B) {
		b.ReportAllocs()
		opt := experiments.QuickFig4Options()
		opt.Duration = 4 * time.Second
		for i := 0; i < b.N; i++ {
			experiments.Fig4(opt)
		}
	})

	add("AdmissionDecision", func(b *testing.B) {
		b.ReportAllocs()
		eng := mittos.NewEngine()
		s := mittos.NewStack(eng, mittos.StackConfig{
			Device: mittos.DeviceDisk, Scheduler: mittos.SchedulerNoop, Mitt: true, Seed: 1})
		for i := 0; i < 16; i++ {
			s.Read(int64(i+1)*(40<<30), 1<<20, 0, func(error) {})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = s.PredictWait(int64(i%900)<<30, 4096)
		}
	})

	add("EngineThroughput", func(b *testing.B) {
		b.ReportAllocs()
		eng := mittos.NewEngine()
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < b.N {
				eng.After(time.Microsecond, tick)
			}
		}
		eng.After(time.Microsecond, tick)
		b.ResetTimer()
		eng.Run()
	})

	// Hedged-style schedule-then-cancel churn, timing wheel vs the retained
	// min-heap oracle (same bodies as BenchmarkEngineCancelHeavy).
	const (
		cancelStreams = 4096
		cancelTickGap = 3 * time.Microsecond
		cancelTimeout = 30 * time.Millisecond
	)
	add("EngineCancelHeavy/wheel", func(b *testing.B) {
		b.ReportAllocs()
		eng := sim.NewEngine()
		nop := func() {}
		timeouts := make([]*sim.Event, cancelStreams)
		n, cur := 0, 0
		var tick func()
		tick = func() {
			s := cur
			cur = (cur + 1) % cancelStreams
			if timeouts[s] != nil {
				timeouts[s].Cancel()
			}
			timeouts[s] = eng.Schedule(cancelTimeout, nop)
			n++
			if n < b.N {
				eng.After(cancelTickGap, tick)
			}
		}
		eng.After(cancelTickGap, tick)
		b.ResetTimer()
		eng.Run()
	})
	add("EngineCancelHeavy/heap", func(b *testing.B) {
		b.ReportAllocs()
		eng := sim.NewEventHeap()
		nop := func() {}
		timeouts := make([]*sim.HeapEvent, cancelStreams)
		n, cur := 0, 0
		var tick func()
		tick = func() {
			s := cur
			cur = (cur + 1) % cancelStreams
			if timeouts[s] != nil {
				timeouts[s].Cancel()
			}
			timeouts[s] = eng.Schedule(cancelTimeout, nop)
			n++
			if n < b.N {
				eng.After(cancelTickGap, tick)
			}
		}
		eng.After(cancelTickGap, tick)
		b.ResetTimer()
		eng.Run()
	})

	// µs device events interleaved with ms/s deadlines — the cascade-heavy
	// shape of a real experiment leg (same bodies as
	// BenchmarkEngineMixedHorizon).
	add("EngineMixedHorizon/wheel", func(b *testing.B) {
		b.ReportAllocs()
		eng := sim.NewEngine()
		nop := func() {}
		i := 0
		var tick func()
		tick = func() {
			i++
			switch {
			case i%4096 == 0:
				eng.After(5*time.Second, nop)
			case i%256 == 0:
				eng.After(300*time.Millisecond, nop)
			case i%16 == 0:
				eng.After(4*time.Millisecond, nop)
			}
			if i < b.N {
				eng.After(2*time.Microsecond, tick)
			}
		}
		eng.After(2*time.Microsecond, tick)
		b.ResetTimer()
		eng.Run()
	})
	add("EngineMixedHorizon/heap", func(b *testing.B) {
		b.ReportAllocs()
		eng := sim.NewEventHeap()
		nop := func() {}
		i := 0
		var tick func()
		tick = func() {
			i++
			switch {
			case i%4096 == 0:
				eng.After(5*time.Second, nop)
			case i%256 == 0:
				eng.After(300*time.Millisecond, nop)
			case i%16 == 0:
				eng.After(4*time.Millisecond, nop)
			}
			if i < b.N {
				eng.After(2*time.Microsecond, tick)
			}
		}
		eng.After(2*time.Microsecond, tick)
		b.ResetTimer()
		eng.Run()
	})

	for _, procs := range []int{4, 32, 256} {
		procs := procs
		add(fmt.Sprintf("PredictWaitCFQ/%d", procs), func(b *testing.B) {
			b.ReportAllocs()
			eng := mittos.NewEngine()
			s := mittos.NewStack(eng, mittos.StackConfig{
				Device: mittos.DeviceDisk, Scheduler: mittos.SchedulerCFQ, Mitt: true, Seed: 1})
			var ids blockio.IDGen
			for p := 0; p < procs; p++ {
				for k := 0; k < 2; k++ {
					req := &mittos.Request{ID: ids.Next(), Op: mittos.OpRead,
						Offset: int64(p*7+k+1) * (1 << 30), Size: 1 << 20, Proc: p + 2}
					s.Target().SubmitSLO(req, func(error) {})
				}
			}
			_ = s.PredictWait(100<<30, 4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = s.PredictWait(int64(i%900)<<30, 4096)
			}
		})
	}

	add("YCSBMix", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Run("ycsbmix", experiments.RunConfig{Quick: true, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})

	add("LoadSweep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Run("loadsweep", experiments.RunConfig{Quick: true, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})

	add("PutAdmission", func(b *testing.B) {
		b.ReportAllocs()
		eng := mittos.NewEngine()
		s := mittos.NewStack(eng, mittos.StackConfig{
			Device: mittos.DeviceDisk, Scheduler: mittos.SchedulerCFQ, Mitt: true, Seed: 1})
		cfg := kv.DefaultConfig(0, 100<<30)
		cfg.MemtableCap = 1 << 30 // isolate the WAL path: never flush
		var ids blockio.IDGen
		st := kv.New(eng, cfg, s.Target(), &ids)
		done := func(error) {}
		put := func() {
			st.PutDurable(7, time.Second, done)
			eng.Run()
		}
		for i := 0; i < 64; i++ {
			put()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			put()
		}
	})

	add("CFQSubmitDispatch", func(b *testing.B) {
		b.ReportAllocs()
		eng := mittos.NewEngine()
		s := mittos.NewStack(eng, mittos.StackConfig{
			Device: mittos.DeviceDisk, Scheduler: mittos.SchedulerCFQ, Mitt: true, Seed: 1})
		var pool blockio.Pool
		var ids blockio.IDGen
		var cur *blockio.Request
		done := func(error) { cur.Release() }
		submit := func(off int64) {
			cur = pool.Get()
			cur.ID = ids.Next()
			cur.Op = blockio.Read
			cur.Offset, cur.Size = off, 4096
			cur.Proc = 1
			cur.Deadline = time.Second
			s.Target().SubmitSLO(cur, done)
			eng.Run()
		}
		for i := 0; i < 64; i++ {
			submit(int64(i+1) * (10 << 30))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			submit(int64(i%900) << 30)
		}
	})

	add("SeekCost", func(b *testing.B) {
		b.ReportAllocs()
		prof := disk.ProfileTwin(disk.DefaultConfig(), 42, disk.DefaultProfilerOptions())
		b.ResetTimer()
		var sink time.Duration
		for i := 0; i < b.N; i++ {
			sink += prof.SeekCost(int64(i%997) << 27)
		}
		benchSink = sink
	})

	j, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(j, '\n'), 0o644)
}

// writeMetrics renders each leg's snapshot: the deterministic text dump,
// then any captured per-IO spans as JSONL.
func writeMetrics(b *strings.Builder, res *mittos.ExperimentResult) {
	for _, snap := range res.Metrics {
		b.WriteString(snap.String())
		for _, sp := range snap.Spans {
			j, err := json.Marshal(sp)
			if err != nil {
				fmt.Fprintf(b, "span: %v\n", err)
				continue
			}
			b.Write(j)
			b.WriteByte('\n')
		}
	}
}

// dumpMetricsJSON writes every snapshot (experiments in print order, legs
// in declaration order) as one JSON array.
func dumpMetricsJSON(path string, snaps []*metrics.Snapshot) error {
	if snaps == nil {
		snaps = []*metrics.Snapshot{}
	}
	j, err := json.MarshalIndent(snaps, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(j, '\n'), 0o644)
}

// dumpCSV writes each series' CDF as <dir>/<id>-<series>.csv with
// latency-milliseconds, cumulative-probability rows.
func dumpCSV(dir string, res *mittos.ExperimentResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, s := range res.Series {
		name := strings.NewReplacer("/", "_", "%", "pct", "(", "", ")", "").Replace(s.Name)
		path := filepath.Join(dir, fmt.Sprintf("%s-%s.csv", res.ID, name))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		fmt.Fprintln(f, "latency_ms,cumulative_probability")
		for _, pt := range s.CDF(200) {
			fmt.Fprintf(f, "%.4f,%.5f\n", float64(pt.Latency)/1e6, pt.P)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
