// Command mittsim is a single-node storage-stack explorer: it builds one
// SLO-aware stack (disk or SSD, with optional page cache), runs a probe
// workload against configurable noisy-neighbor contention, and prints the
// accept/EBUSY decisions and latency distribution — the smallest possible
// MittOS demo.
//
// Usage:
//
//	mittsim -device disk -noise 4 -deadline 15ms
//	mittsim -device ssd  -noise 2 -noise-size 262144 -deadline 1ms
//	mittsim -device disk -cache 100000 -deadline 200us
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mittos"
	"mittos/internal/blockio"
	"mittos/internal/noise"
	"mittos/internal/stats"
)

func main() {
	var (
		device    = flag.String("device", "disk", "disk | ssd")
		cache     = flag.Int("cache", 0, "page-cache size in 4KB pages (0 = none)")
		deadline  = flag.Duration("deadline", 15*time.Millisecond, "probe deadline SLO")
		duration  = flag.Duration("duration", 30*time.Second, "virtual observation time")
		interval  = flag.Duration("interval", 20*time.Millisecond, "probe period")
		streams   = flag.Int("noise", 4, "noisy-neighbor contender streams")
		noiseSize = flag.Int("noise-size", 1<<20, "contender IO size in bytes")
		seed      = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	eng := mittos.NewEngine()
	cfg := mittos.StackConfig{Mitt: true, CachePages: *cache, Seed: *seed}
	var space int64
	switch *device {
	case "disk":
		cfg.Device = mittos.DeviceDisk
		space = mittos.DefaultDiskConfig().CapacityBytes * 9 / 10
	case "ssd":
		cfg.Device = mittos.DeviceSSD
		space = mittos.DefaultSSDConfig().LogicalBytes() / 2
	default:
		fmt.Fprintf(os.Stderr, "unknown device %q\n", *device)
		os.Exit(2)
	}
	stack := mittos.NewStack(eng, cfg)

	// Noise tenant.
	var sink blockio.Device = stackDevice{stack}
	op := blockio.Read
	if *device == "ssd" {
		op = blockio.Write
	}
	st := noise.NewSteady(eng, sink, mittos.NewRNG(*seed, "noise"),
		op, *noiseSize, *streams, blockio.ClassBestEffort, 5, 99, space)
	st.Start()

	// Probe tenant.
	rng := mittos.NewRNG(*seed, "probe")
	accepted := stats.NewSample(0)
	busy := 0
	if *cache > 0 {
		stack.Cache.Warm(0, *cache*4096/2)
	}
	eng.NewTicker(*interval, func() {
		off := rng.Int63n(space - 4096)
		start := eng.Now()
		stack.Read(off, 4096, *deadline, func(err error) {
			if mittos.IsBusy(err) {
				busy++
				return
			}
			accepted.Add(eng.Now().Sub(start))
		})
	})
	eng.RunFor(*duration)
	st.Stop()
	eng.RunFor(time.Second)

	total := accepted.N() + busy
	fmt.Printf("device=%s deadline=%v noise=%d×%dB over %v\n",
		*device, *deadline, *streams, *noiseSize, *duration)
	fmt.Printf("probes: %d   accepted: %d   EBUSY: %d (%.1f%%)\n",
		total, accepted.N(), busy, 100*float64(busy)/float64(max(total, 1)))
	tb := &stats.Table{Header: []string{"metric", "value"}}
	tb.AddRow("accepted p50", stats.FormatDuration(accepted.Percentile(50)))
	tb.AddRow("accepted p95", stats.FormatDuration(accepted.Percentile(95)))
	tb.AddRow("accepted p99", stats.FormatDuration(accepted.Percentile(99)))
	tb.AddRow("accepted max", stats.FormatDuration(accepted.Max()))
	tb.AddRow("predicted wait now", stats.FormatDuration(stack.PredictWait(space/2, 4096)))
	fmt.Print(tb.String())
}

// stackDevice adapts the facade stack to the blockio.Device the noise
// injectors speak.
type stackDevice struct{ s *mittos.Stack }

// Submit implements blockio.Device.
func (d stackDevice) Submit(req *blockio.Request) { d.s.Target().SubmitSLO(req, func(error) {}) }

// InFlight implements blockio.Device.
func (d stackDevice) InFlight() int { return 0 }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
