// Command benchdiff compares two mittbench -bench-json snapshots and fails
// (exit 1) on performance regressions — the CI gate that keeps the
// admission path's measured budgets from silently eroding.
//
// Usage:
//
//	benchdiff [-ns-threshold 25] [-bytes-threshold 25] [-gc-threshold 100] old.json new.json
//
// For every benchmark present in the baseline, the gate fails when:
//
//   - ns/op regresses by more than -ns-threshold percent (default 25%,
//     loose enough for shared CI machines but tight enough to catch a
//     complexity-class slip), or
//   - bytes/op regresses by more than -bytes-threshold percent (default
//     25%, same slack rules as ns/op: percent-threshold on nonzero
//     baselines), or any increase at all on a zero-bytes baseline (a
//     pinned allocation-free path), or
//   - allocs/op regresses: any increase for zero-alloc baselines (those
//     paths are pinned and deterministic), and any increase beyond 0.1%
//     for experiment-scale baselines (iteration count amortizes one-time
//     warmup allocations differently run to run, shifting the count by a
//     few parts in ten thousand), or
//   - GC pause per op regresses by more than -gc-threshold percent
//     (default 100% — pause totals are the noisiest of the measures),
//     gated only where the baseline recorded a material pause (at least
//     1µs/op: experiment-scale benchmarks). Old snapshots without the GC
//     fields, benchmarks that never trigger a collection, and
//     nanosecond-scale paths whose amortized pause is measurement noise
//     are not gated. Or
//   - the benchmark disappeared from the new snapshot (coverage loss).
//
// Benchmarks only present in the new snapshot pass (they extend coverage;
// committing the refreshed snapshot makes them part of the baseline).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// materialPauseNsPerOp is the floor below which the GC-pause gate stays
// unarmed: a sub-microsecond amortized pause means the benchmark barely
// collects at all, and the ratio of two such numbers is noise over noise.
const materialPauseNsPerOp = 1000

type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// GC fields are zero in snapshots written before they existed; the
	// pause gate only arms when the baseline recorded a material value.
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	NumGC          uint32  `json:"num_gc"`
	GCPauseNs      uint64  `json:"gc_pause_ns"`
	GCPauseNsPerOp float64 `json:"gc_pause_ns_per_op"`
}

func load(path string) (map[string]benchResult, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var list []benchResult
	if err := json.Unmarshal(data, &list); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]benchResult, len(list))
	order := make([]string, 0, len(list))
	for _, r := range list {
		if _, dup := m[r.Name]; dup {
			return nil, nil, fmt.Errorf("%s: duplicate benchmark %q", path, r.Name)
		}
		m[r.Name] = r
		order = append(order, r.Name)
	}
	return m, order, nil
}

func main() {
	nsThreshold := flag.Float64("ns-threshold", 25, "max allowed ns/op regression in percent")
	bytesThreshold := flag.Float64("bytes-threshold", 25, "max allowed bytes/op regression in percent (zero-bytes baselines allow no increase)")
	gcThreshold := flag.Float64("gc-threshold", 100, "max allowed GC-pause-per-op regression in percent, where the baseline recorded a material (>=1µs/op) pause")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-ns-threshold pct] [-bytes-threshold pct] [-gc-threshold pct] old.json new.json")
		os.Exit(2)
	}
	oldSet, order, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	newSet, _, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	failed := false
	fmt.Printf("%-24s %14s %14s %8s %14s %8s %10s %10s %12s\n",
		"benchmark", "old ns/op", "new ns/op", "Δns", "new B/op", "ΔB", "old allocs", "new allocs", "Δgc-pause")
	for _, name := range order {
		o := oldSet[name]
		n, ok := newSet[name]
		if !ok {
			fmt.Printf("%-24s MISSING from new snapshot\n", name)
			failed = true
			continue
		}
		deltaPct := 0.0
		if o.NsPerOp > 0 {
			deltaPct = 100 * (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		}
		bytesPct := 0.0
		if o.BytesPerOp > 0 {
			bytesPct = 100 * float64(n.BytesPerOp-o.BytesPerOp) / float64(o.BytesPerOp)
		}
		gcPct := 0.0
		if o.GCPauseNsPerOp >= materialPauseNsPerOp {
			gcPct = 100 * (n.GCPauseNsPerOp - o.GCPauseNsPerOp) / o.GCPauseNsPerOp
		}
		verdict := ""
		if deltaPct > *nsThreshold {
			verdict = "  FAIL ns/op"
			failed = true
		}
		if bytesPct > *bytesThreshold || (o.BytesPerOp == 0 && n.BytesPerOp > 0) {
			verdict += "  FAIL bytes/op"
			failed = true
		}
		if n.AllocsPerOp > o.AllocsPerOp+o.AllocsPerOp/1000 {
			verdict += "  FAIL allocs/op"
			failed = true
		}
		if o.GCPauseNsPerOp >= materialPauseNsPerOp && gcPct > *gcThreshold {
			verdict += "  FAIL gc-pause/op"
			failed = true
		}
		fmt.Printf("%-24s %14.1f %14.1f %+7.1f%% %14d %+7.1f%% %10d %10d %+11.1f%%%s\n",
			name, o.NsPerOp, n.NsPerOp, deltaPct, n.BytesPerOp, bytesPct,
			o.AllocsPerOp, n.AllocsPerOp, gcPct, verdict)
	}
	if failed {
		fmt.Println("\nbenchdiff: regression detected")
		os.Exit(1)
	}
	fmt.Println("\nbenchdiff: ok")
}
