// Package mittos is a complete, simulation-backed reproduction of
// "MittOS: Supporting Millisecond Tail Tolerance with Fast Rejecting
// SLO-Aware OS Interface" (Hao et al., SOSP 2017).
//
// MittOS advocates one principle: the operating system should quickly
// reject IOs whose latency SLOs it predicts it cannot meet, instead of
// silently queueing them. Applications attach deadlines to reads; when the
// OS predicts the deadline will be violated it returns EBUSY immediately
// (sub-5µs), and a replicated data store fails the request over to another
// node at the cost of one network hop instead of a multi-millisecond wait.
//
// This package is the public facade. It exposes:
//
//   - the deterministic simulation engine everything runs on (Engine),
//   - a single-node SLO-aware storage stack (Stack) covering all four
//     resource managers of the paper — the noop and CFQ disk schedulers,
//     host-managed flash, and the OS page cache,
//   - the replicated NoSQL cluster and every client-side tail-tolerance
//     strategy the paper compares (Base, application timeout, cloning,
//     hedged requests, snitching, C3, MittOS failover),
//   - and runners that regenerate every table and figure of the paper's
//     evaluation (RunExperiment).
//
// Everything is stdlib-only and fully deterministic: a fixed seed
// reproduces results bit-for-bit. See DESIGN.md for the system inventory
// and the paper→simulation substitution map, and EXPERIMENTS.md for
// paper-vs-measured results.
package mittos

import (
	"errors"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/cluster"
	"mittos/internal/core"
	"mittos/internal/netsim"
	"mittos/internal/sim"
)

// ErrBusy is the fast-rejection signal: the IO was not queued because its
// deadline SLO cannot be met (the paper's EBUSY errno).
var ErrBusy = blockio.ErrBusy

// IsBusy reports whether err is an EBUSY rejection (including the enriched
// *BusyError carrying the predicted wait).
func IsBusy(err error) bool { return errors.Is(err, blockio.ErrBusy) }

// BusyError is the enriched rejection carrying MittOS's predicted wait —
// the paper's "return EBUSY with wait time" extension (§8.1).
type BusyError = core.BusyError

// Engine is the deterministic discrete-event simulation engine. All MittOS
// components run in virtual time on an Engine; use NewEngine, schedule work
// with Schedule/At, and advance time with Run/RunFor/RunUntil.
type Engine = sim.Engine

// NewEngine returns an engine positioned at virtual time zero.
func NewEngine() *Engine { return sim.NewEngine() }

// RNG is a named, seeded random stream; every component takes its own so
// experiments stay reproducible under change.
type RNG = sim.RNG

// NewRNG derives a deterministic stream from a root seed and a name.
func NewRNG(seed int64, name string) *RNG { return sim.NewRNG(seed, name) }

// Request is one block IO descriptor, including the Deadline SLO field
// MittOS adds to the kernel's request struct.
type Request = blockio.Request

// IO operation kinds and scheduling classes, re-exported for request
// construction.
const (
	OpRead  = blockio.Read
	OpWrite = blockio.Write

	ClassRealTime   = blockio.ClassRealTime
	ClassBestEffort = blockio.ClassBestEffort
	ClassIdle       = blockio.ClassIdle
)

// Target is a deadline-aware storage endpoint: SubmitSLO either completes
// the request or delivers ErrBusy.
type Target = core.Target

// Options configure a MittOS admission layer (Thop allowance, shadow mode,
// calibration, the naive-predictor ablation).
type Options = core.Options

// DefaultOptions returns the paper's constants (0.3ms Thop, 2µs syscall
// cost, calibration on).
func DefaultOptions() Options { return core.DefaultOptions() }

// Accuracy carries shadow-mode prediction-quality counters (§7.6).
type Accuracy = core.Accuracy

// Cluster is the replicated NoSQL store; Node one replica server.
type (
	Cluster    = cluster.Cluster
	Node       = cluster.Node
	NodeConfig = cluster.NodeConfig
	GetResult  = cluster.GetResult
	Strategy   = cluster.Strategy
	Client     = cluster.Client
	CPUPool    = cluster.CPUPool
)

// DeviceKind selects a storage medium.
type DeviceKind = cluster.DeviceKind

// Device kinds for NodeConfig and StackConfig.
const (
	DeviceDisk = cluster.DeviceDisk
	DeviceSSD  = cluster.DeviceSSD
)

// Client-side request strategies (§7.2): the paper's comparison points.
type (
	BaseStrategy    = cluster.BaseStrategy
	TimeoutStrategy = cluster.TimeoutStrategy
	CloneStrategy   = cluster.CloneStrategy
	HedgedStrategy  = cluster.HedgedStrategy
	SnitchStrategy  = cluster.SnitchStrategy
	C3Strategy      = cluster.C3Strategy
	MittOSStrategy  = cluster.MittOSStrategy
)

// Network models the one-hop datacenter fabric (0.3ms per hop by default).
type Network = netsim.Network

// NewNetwork builds a network on the engine; cfg hop latency defaults to
// the paper's 0.3ms when zero.
func NewNetwork(eng *Engine, hop time.Duration, rng *RNG) *Network {
	cfg := netsim.DefaultConfig()
	if hop > 0 {
		cfg.HopLatency = hop
	}
	return netsim.New(eng, cfg, rng)
}

// NewCluster builds an n-node cluster with R-way replication from a node
// template.
func NewCluster(eng *Engine, net *Network, n, replication int, tmpl NodeConfig, rng *RNG) *Cluster {
	return cluster.NewCluster(eng, net, n, replication, tmpl, rng)
}

// NewCPUPool models one machine's cores shared by colocated processes.
func NewCPUPool(eng *Engine, cores int) *CPUPool { return cluster.NewCPUPool(eng, cores) }
