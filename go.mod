module mittos

go 1.22
