package mittos

import (
	"mittos/internal/disk"
	"mittos/internal/experiments"
)

// DiskProfile returns the shared offline disk profile for the default disk
// model — the white-box latency model MittNoop/MittCFQ predictors consume
// (Appendix A). Building a NodeConfig by hand requires one.
func DiskProfile() *disk.Profile { return experiments.DiskProfile() }

// ExperimentResult is the rendered output of one regenerated table/figure.
type ExperimentResult = experiments.Result

// ExperimentOptions scale the macro experiments.
type ExperimentOptions = experiments.Options

// FullScale returns the paper-scale configuration (20 nodes, 20 clients,
// 60s measured per strategy run).
func FullScale() ExperimentOptions { return experiments.DefaultOptions() }

// QuickScale returns a reduced configuration suitable for tests and
// benches (9 nodes, 6 clients, 10s per run).
func QuickScale() ExperimentOptions { return experiments.QuickOptions() }

// ExperimentConfig selects scale, seed, parallelism, and observability for
// one experiment run (see internal/experiments.RunConfig).
type ExperimentConfig = experiments.RunConfig

// Experiments lists the available experiment ids, sorted.
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates one of the paper's tables or figures by id
// ("table1", "fig3" … "fig13", "allinone", "writes") at seed 1. quick
// selects the reduced scale; full scale mirrors the paper's setup.
func RunExperiment(id string, quick bool) (*ExperimentResult, error) {
	return RunExperimentSeed(id, quick, 1)
}

// RunExperimentSeed is RunExperiment with an explicit seed: different seeds
// draw fresh noise timelines and workloads, the cheap way to check a
// result's stability. Independent simulation legs run on one worker per
// CPU; use RunExperimentWorkers to pin the pool size.
func RunExperimentSeed(id string, quick bool, seed int64) (*ExperimentResult, error) {
	return RunExperimentWorkers(id, quick, seed, 0)
}

// RunExperimentWorkers is RunExperimentSeed with an explicit worker-pool
// bound for the experiment's independent simulation legs: 0 means one
// worker per CPU, 1 forces the serial reference schedule. The rendered
// result is byte-identical for any value — parallelism only changes
// wall-clock time (see internal/experiments/runner.go).
func RunExperimentWorkers(id string, quick bool, seed int64, workers int) (*ExperimentResult, error) {
	return RunExperimentConfig(id, ExperimentConfig{Quick: quick, Seed: seed, Workers: workers})
}

// RunExperimentConfig runs one experiment under a full config, including
// the observability knobs (Metrics enables per-layer counters/histograms;
// TraceIOs bounds per-IO span capture). Metrics never change the rendered
// output — they ride along on Result.Metrics.
func RunExperimentConfig(id string, cfg ExperimentConfig) (*ExperimentResult, error) {
	return experiments.Run(id, cfg)
}
