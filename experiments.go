package mittos

import (
	"fmt"
	"sort"

	"mittos/internal/disk"
	"mittos/internal/experiments"
)

// DiskProfile returns the shared offline disk profile for the default disk
// model — the white-box latency model MittNoop/MittCFQ predictors consume
// (Appendix A). Building a NodeConfig by hand requires one.
func DiskProfile() *disk.Profile { return experiments.DiskProfile() }

// ExperimentResult is the rendered output of one regenerated table/figure.
type ExperimentResult = experiments.Result

// ExperimentOptions scale the macro experiments.
type ExperimentOptions = experiments.Options

// FullScale returns the paper-scale configuration (20 nodes, 20 clients,
// 60s measured per strategy run).
func FullScale() ExperimentOptions { return experiments.DefaultOptions() }

// QuickScale returns a reduced configuration suitable for tests and
// benches (9 nodes, 6 clients, 10s per run).
func QuickScale() ExperimentOptions { return experiments.QuickOptions() }

// experimentRunners maps experiment ids to their runners. Each regenerates
// one table or figure of the paper (see DESIGN.md's per-experiment index).
// workers bounds the worker pool an experiment's independent simulation
// legs run on (0 = one per CPU, 1 = serial); output is byte-identical for
// any value.
var experimentRunners = map[string]func(quick bool, seed int64, workers int) *ExperimentResult{
	"table1": func(q bool, seed int64, w int) *ExperimentResult { return experiments.Table1(scale(q, seed, w)) },
	"fig3": func(q bool, seed int64, w int) *ExperimentResult {
		o := experiments.DefaultFig3Options()
		if q {
			o = experiments.QuickFig3Options()
		}
		o.Seed = seed
		return &experiments.Fig3(o).Result
	},
	"fig4": func(q bool, seed int64, w int) *ExperimentResult {
		o := experiments.DefaultFig4Options()
		if q {
			o = experiments.QuickFig4Options()
		}
		o.Seed = seed
		o.Workers = w
		return experiments.Fig4(o)
	},
	"fig5": func(q bool, seed int64, w int) *ExperimentResult { return experiments.Fig5(scale(q, seed, w)) },
	"fig6": func(q bool, seed int64, w int) *ExperimentResult { return experiments.Fig6(scale(q, seed, w)) },
	"fig7": func(q bool, seed int64, w int) *ExperimentResult { return experiments.Fig7(scale(q, seed, w)) },
	"fig8": func(q bool, seed int64, w int) *ExperimentResult {
		o := experiments.DefaultFig8Options()
		if q {
			o = experiments.QuickFig8Options()
		}
		o.Seed = seed
		o.Workers = w
		return experiments.Fig8(o)
	},
	"fig9": func(q bool, seed int64, w int) *ExperimentResult {
		o := experiments.DefaultFig9Options()
		if q {
			o = experiments.QuickFig9Options()
		}
		o.Seed = seed
		res, _ := experiments.Fig9(o)
		return res
	},
	"fig10":    func(q bool, seed int64, w int) *ExperimentResult { return experiments.Fig10(scale(q, seed, w)) },
	"fig11":    func(q bool, seed int64, w int) *ExperimentResult { return experiments.Fig11(scale(q, seed, w)) },
	"fig12":    func(q bool, seed int64, w int) *ExperimentResult { return experiments.Fig12(scale(q, seed, w)) },
	"fig13":    func(q bool, seed int64, w int) *ExperimentResult { return &experiments.Fig13(scale(q, seed, w)).Result },
	"allinone": func(q bool, seed int64, w int) *ExperimentResult { return experiments.AllInOne(scale(q, seed, w)) },
	"writes":   func(q bool, seed int64, w int) *ExperimentResult { return experiments.Writes(scale(q, seed, w)) },
}

func scale(quick bool, seed int64, workers int) ExperimentOptions {
	o := FullScale()
	if quick {
		o = QuickScale()
	}
	o.Seed = seed
	o.Workers = workers
	return o
}

// Experiments lists the available experiment ids, sorted.
func Experiments() []string {
	ids := make([]string, 0, len(experimentRunners))
	for id := range experimentRunners {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RunExperiment regenerates one of the paper's tables or figures by id
// ("table1", "fig3" … "fig13", "allinone", "writes") at seed 1. quick
// selects the reduced scale; full scale mirrors the paper's setup.
func RunExperiment(id string, quick bool) (*ExperimentResult, error) {
	return RunExperimentSeed(id, quick, 1)
}

// RunExperimentSeed is RunExperiment with an explicit seed: different seeds
// draw fresh noise timelines and workloads, the cheap way to check a
// result's stability. Independent simulation legs run on one worker per
// CPU; use RunExperimentWorkers to pin the pool size.
func RunExperimentSeed(id string, quick bool, seed int64) (*ExperimentResult, error) {
	return RunExperimentWorkers(id, quick, seed, 0)
}

// RunExperimentWorkers is RunExperimentSeed with an explicit worker-pool
// bound for the experiment's independent simulation legs: 0 means one
// worker per CPU, 1 forces the serial reference schedule. The rendered
// result is byte-identical for any value — parallelism only changes
// wall-clock time (see internal/experiments/runner.go).
func RunExperimentWorkers(id string, quick bool, seed int64, workers int) (*ExperimentResult, error) {
	fn, ok := experimentRunners[id]
	if !ok {
		return nil, fmt.Errorf("mittos: unknown experiment %q (known: %v)", id, Experiments())
	}
	return fn(quick, seed, workers), nil
}
