package mittos

// The paper closes with directions MittOS could grow into (§7.8.2, §8):
// tied requests, richer SLO forms, and resources beyond the storage stack.
// This file exposes the implemented extensions through the facade; each is
// built and tested in its internal package and documented in DESIGN.md §6.

import (
	"time"

	"mittos/internal/cluster"
	"mittos/internal/core"
	"mittos/internal/disk"
	"mittos/internal/iosched"
	"mittos/internal/smr"
	"mittos/internal/vmm"
)

// TiedStrategy is the Dean & Barroso tied-requests approximation the paper
// wanted to evaluate but could not (§7.8.2): duplicate-with-delay, the
// winner revoking its sibling's still-queued IO.
type TiedStrategy = cluster.TiedStrategy

// ConsistentMittOSStrategy is §8.3's conservative failover: EBUSY retries
// only go to replicas fresh enough to preserve monotonic reads; when every
// alternative is stale the request waits, trading tail latency for the
// consistency guarantee.
type ConsistentMittOSStrategy = cluster.ConsistentMittOSStrategy

// ThroughputSLO wraps any Target with per-tenant IOPS contracts — the §8.1
// "other forms of SLO" extension. Tenants over contract get instant EBUSY
// with a time-to-next-token wait hint.
type ThroughputSLO = core.ThroughputSLO

// NewThroughputSLO wraps inner with throughput admission.
func NewThroughputSLO(eng *Engine, inner Target, opt Options) *ThroughputSLO {
	return core.NewThroughputSLO(eng, inner, opt)
}

// SMRDrive models a host-aware shingled drive whose band cleaning stalls
// reads for hundreds of milliseconds (§8.2).
type (
	SMRDrive  = smr.Drive
	SMRConfig = smr.Config
	// MittSMR applies the MittOS principle to band cleaning: reads whose
	// deadline cannot survive the in-progress clean bounce immediately.
	MittSMR = core.MittSMR
)

// DefaultSMRConfig returns a 1TB host-aware SMR drive model.
func DefaultSMRConfig() SMRConfig { return smr.DefaultConfig() }

// NewSMRStack assembles drive → noop scheduler → MittSMR, the §8.2 SMR
// deployment, and returns both the admission layer and the drive.
func NewSMRStack(eng *Engine, cfg SMRConfig, seed int64) (*MittSMR, *SMRDrive) {
	drive := smr.New(eng, cfg, NewRNG(seed, "smr-drive"))
	nop := iosched.NewNoop(eng, drive)
	prof := disk.ProfileTwin(cfg.Disk, 42, disk.DefaultProfilerOptions())
	return core.NewMittSMR(eng, nop, drive, prof, core.DefaultOptions()), drive
}

// VMMHost models a hypervisor multiplexing CPU-bound guests in 30ms
// timeslices; MittVMM semantics reject messages to frozen VMs (§8.2).
type (
	VMMHost   = vmm.Host
	VMMConfig = vmm.Config
	GuestVM   = vmm.VM
)

// DefaultVMMConfig returns the §8.2 parameters (30ms timeslices).
func DefaultVMMConfig() VMMConfig { return vmm.DefaultConfig() }

// NewVMMHost builds the hypervisor with the given guests.
func NewVMMHost(eng *Engine, cfg VMMConfig, vms []*GuestVM) *VMMHost {
	return vmm.NewHost(eng, cfg, vms)
}

// MittOSWaitHintStrategy returns a MittOS failover strategy with the
// EBUSY-with-wait-time extension enabled: when all three replicas reject,
// the fourth try goes to the one that predicted the shortest wait
// (§5, §7.8.1).
func MittOSWaitHintStrategy(c *Cluster, deadline time.Duration) *MittOSStrategy {
	return &MittOSStrategy{C: c, Deadline: deadline, UseWaitHint: true}
}
